"""SchedulingTrigger: pub/sub, coalescing, min-interval, backoff."""

import pytest

from repro.cluster.node import Node, NodeSpec
from repro.cluster.topology import paper_cluster
from repro.orchestrator.api import make_pod_spec
from repro.orchestrator.controller import Orchestrator
from repro.orchestrator.triggers import (
    ClusterEvent,
    SchedulingTrigger,
    TriggerEvent,
)
from repro.scheduler.binpack import BinpackScheduler
from repro.units import mib


class TestPublishSubscribe:
    def test_listener_sees_every_publish(self):
        trigger = SchedulingTrigger()
        seen = []
        trigger.subscribe(seen.append)
        trigger.publish(ClusterEvent.POD_SUBMITTED, 1.0, pod_name="a")
        trigger.publish(ClusterEvent.POD_COMPLETED, 2.0, pod_name="a")
        assert [e.kind for e in seen] == [
            ClusterEvent.POD_SUBMITTED,
            ClusterEvent.POD_COMPLETED,
        ]
        assert all(isinstance(e, TriggerEvent) for e in seen)

    def test_counters(self):
        trigger = SchedulingTrigger()
        trigger.publish(ClusterEvent.POD_SUBMITTED, 1.0)
        trigger.publish(ClusterEvent.POD_SUBMITTED, 1.5)
        assert trigger.events_published == 2
        assert trigger.pending_events == 2


class TestPassGating:
    def test_no_events_no_pass(self):
        trigger = SchedulingTrigger()
        assert not trigger.has_work(0.0)
        assert trigger.next_pass_due(0.0) is None

    def test_event_makes_pass_due_immediately(self):
        trigger = SchedulingTrigger()
        trigger.publish(ClusterEvent.POD_SUBMITTED, 3.0)
        assert trigger.next_pass_due(3.0) == 3.0

    def test_coalescing_many_events_one_pass(self):
        trigger = SchedulingTrigger()
        for i in range(5):
            trigger.publish(ClusterEvent.POD_SUBMITTED, 1.0 + i)
        consumed = trigger.begin_pass(10.0)
        assert len(consumed) == 5
        assert trigger.events_coalesced == 4
        assert not trigger.has_work(10.0)

    def test_min_interval_guard(self):
        trigger = SchedulingTrigger(min_interval_seconds=5.0)
        trigger.publish(ClusterEvent.POD_SUBMITTED, 0.0)
        trigger.begin_pass(0.0)
        trigger.publish(ClusterEvent.POD_SUBMITTED, 1.0)
        # Due no sooner than last pass + min interval.
        assert trigger.next_pass_due(1.0) == 5.0
        # Once the guard has elapsed, due immediately.
        assert trigger.next_pass_due(7.0) == 7.0


class TestBackoff:
    def test_deferred_until_ready_at(self):
        trigger = SchedulingTrigger()
        trigger.publish(
            ClusterEvent.POD_REQUEUED, 10.0, pod_name="p", ready_at=40.0
        )
        assert not trigger.has_work(20.0)
        assert trigger.next_wake(20.0) == 40.0
        assert trigger.has_work(40.0)

    def test_promotion_publishes_requeue_ready(self):
        trigger = SchedulingTrigger()
        seen = []
        trigger.subscribe(seen.append)
        trigger.publish(
            ClusterEvent.POD_REQUEUED, 10.0, pod_name="p", ready_at=40.0
        )
        trigger.has_work(41.0)
        assert seen[-1].kind is ClusterEvent.REQUEUE_READY
        assert seen[-1].pod_name == "p"
        assert seen[-1].time == 40.0

    def test_ready_at_in_past_is_ready_now(self):
        trigger = SchedulingTrigger()
        trigger.publish(
            ClusterEvent.POD_REQUEUED, 10.0, pod_name="p", ready_at=5.0
        )
        assert trigger.has_work(10.0)

    def test_discard_ready_keeps_future_backoffs(self):
        trigger = SchedulingTrigger()
        trigger.publish(ClusterEvent.POD_COMPLETED, 10.0)
        trigger.publish(
            ClusterEvent.POD_REQUEUED, 10.0, pod_name="p", ready_at=40.0
        )
        assert trigger.discard_ready(10.0) == 1
        assert not trigger.has_work(20.0)
        assert trigger.has_work(40.0)


class TestOrchestratorPublishes:
    """The controller publishes each lifecycle transition."""

    def kinds(self, trigger):
        return [e.kind for e in trigger._ready]

    def test_submit_complete_kill(self):
        orchestrator = Orchestrator(paper_cluster())
        trigger = orchestrator.trigger
        scheduler = BinpackScheduler()
        pod = orchestrator.submit(
            make_pod_spec("p", duration_seconds=60.0,
                          declared_epc_bytes=mib(10)),
            now=0.0,
        )
        assert ClusterEvent.POD_SUBMITTED in self.kinds(trigger)
        orchestrator.scheduling_pass(scheduler, now=1.0)
        assert not trigger.has_work(1.0)  # pass consumed the submission
        orchestrator.start_pod(pod, now=2.0)
        orchestrator.complete_pod(pod, now=50.0)
        assert ClusterEvent.POD_COMPLETED in self.kinds(trigger)

        victim = orchestrator.submit(
            make_pod_spec("v", duration_seconds=60.0), now=51.0
        )
        orchestrator.kill_pod(victim, now=52.0, reason="test")
        assert ClusterEvent.POD_KILLED in self.kinds(trigger)

    def test_node_add_remove(self):
        orchestrator = Orchestrator(paper_cluster())
        trigger = orchestrator.trigger
        orchestrator.add_node(Node(NodeSpec.sgx("sgx-worker-9")), now=5.0)
        assert ClusterEvent.NODE_ADDED in self.kinds(trigger)
        orchestrator.remove_node("sgx-worker-9", now=6.0)
        assert ClusterEvent.NODE_REMOVED in self.kinds(trigger)

    def test_requeue_publishes_ready_at(self):
        orchestrator = Orchestrator(
            paper_cluster(
                enforce_epc_limits=False,
                epc_allow_overcommit=False,
                sgx_workers=1,
            ),
            requeue_backoff_seconds=30.0,
        )
        events = []
        orchestrator.trigger.subscribe(events.append)
        for index in range(2):
            orchestrator.submit(
                make_pod_spec(
                    f"liar-{index}",
                    duration_seconds=100.0,
                    declared_epc_bytes=mib(1),
                    actual_epc_bytes=mib(60),
                ),
                now=0.0,
            )
        result = orchestrator.scheduling_pass(BinpackScheduler(), now=1.0)
        assert len(result.requeued) == 1
        requeues = [
            e for e in events if e.kind is ClusterEvent.POD_REQUEUED
        ]
        assert len(requeues) == 1
        assert requeues[0].ready_at == pytest.approx(31.0)
