"""Heapster collector and the SGX metrics probe."""

import pytest

from repro.monitoring.heapster import (
    MEASUREMENT_MEMORY,
    Heapster,
    PodUsage,
)
from repro.monitoring.probe import (
    MEASUREMENT_EPC,
    MEASUREMENT_EPC_NODE,
    SgxMetricsProbe,
)
from repro.sgx.driver import SgxDriver
from repro.sgx.epc import EnclavePageCache
from repro.units import mib, pages


class StubSource:
    """A fixed-usage Kubelet stand-in."""

    def __init__(self, usages):
        self._usages = usages

    def pod_memory_usage(self):
        return self._usages


class TestHeapster:
    def test_collect_writes_tagged_points(self, db):
        heapster = Heapster(db)
        heapster.register(
            StubSource([PodUsage("pod-a", "node-1", 1000.0)])
        )
        written = heapster.collect(now=5.0)
        assert written == 1
        (point,) = db.scan(MEASUREMENT_MEMORY)
        assert point.value == 1000.0
        assert point.tag("pod_name") == "pod-a"
        assert point.tag("nodename") == "node-1"

    def test_collect_polls_all_sources(self, db):
        heapster = Heapster(db)
        heapster.register_all(
            [
                StubSource([PodUsage("a", "n1", 1.0)]),
                StubSource([PodUsage("b", "n2", 2.0)]),
            ]
        )
        assert heapster.source_count == 2
        assert heapster.collect(now=1.0) == 2

    def test_empty_sources_write_nothing(self, db):
        heapster = Heapster(db)
        heapster.register(StubSource([]))
        assert heapster.collect(now=1.0) == 0


class TestSgxProbe:
    @pytest.fixture
    def driver(self):
        return SgxDriver(EnclavePageCache())

    def test_probe_reports_per_pod_pages(self, db, driver):
        driver.register_process(1, "/kubepods/burstable/podx")
        driver.create_enclave(1, size_bytes=mib(4))
        probe = SgxMetricsProbe(
            node_name="sgx-0",
            driver=driver,
            db=db,
            pod_name_resolver=lambda path: "pod-x",
        )
        probe.collect(now=3.0)
        (point,) = db.scan(MEASUREMENT_EPC)
        assert point.value == pages(mib(4))
        assert point.tag("pod_name") == "pod-x"
        assert point.tag("nodename") == "sgx-0"

    def test_probe_skips_unresolvable_cgroups(self, db, driver):
        driver.register_process(1, "/system/daemon")
        driver.create_enclave(1, size_bytes=mib(1))
        probe = SgxMetricsProbe(
            node_name="sgx-0",
            driver=driver,
            db=db,
            pod_name_resolver=lambda path: None,
        )
        probe.collect(now=1.0)
        assert db.scan(MEASUREMENT_EPC) == []

    def test_probe_reports_node_gauges(self, db, driver):
        probe = SgxMetricsProbe(
            node_name="sgx-0",
            driver=driver,
            db=db,
            pod_name_resolver=lambda path: None,
        )
        probe.collect(now=1.0)
        gauges = {
            p.tag("gauge"): p.value for p in db.scan(MEASUREMENT_EPC_NODE)
        }
        assert gauges == {"total": 23_936.0, "free": 23_936.0}

    def test_gauges_track_allocations(self, db, driver):
        driver.register_process(1, "/kubepods/burstable/podx")
        driver.create_enclave(1, size_bytes=mib(8))
        probe = SgxMetricsProbe(
            node_name="sgx-0",
            driver=driver,
            db=db,
            pod_name_resolver=lambda path: "x",
        )
        probe.collect(now=1.0)
        free = next(
            p
            for p in db.scan(MEASUREMENT_EPC_NODE)
            if p.tag("gauge") == "free"
        )
        assert free.value == 23_936.0 - pages(mib(8))
