"""Scheduler/workload registries: round-trips and fail-fast errors."""

import pytest

from repro.api import Scenario
from repro.errors import RegistryError
from repro.orchestrator.api import make_pod_spec
from repro.registry import (
    SCHEDULERS,
    WORKLOADS,
    Registry,
    register_scheduler,
    register_workload,
    scheduler_names,
    workload_names,
)
from repro.scheduler.base import Scheduler
from repro.units import gib
from repro.workload.stress import SubmissionPlan


@pytest.fixture
def scratch():
    """A throwaway registry (the globals stay pristine)."""
    return Registry("thing")


class TestRegistry:
    def test_round_trip(self, scratch):
        @scratch.register("x")
        def factory():
            return 41

        assert "x" in scratch
        assert scratch.get("x") is factory
        assert scratch.get("x")() == 41

    def test_decorator_returns_factory_unchanged(self, scratch):
        def factory():
            pass

        assert scratch.register("x")(factory) is factory

    def test_duplicate_name_rejected(self, scratch):
        scratch.register("x")(lambda: None)
        with pytest.raises(RegistryError, match="already registered"):
            scratch.register("x")(lambda: None)

    def test_unknown_name_lists_known(self, scratch):
        scratch.register("alpha")(lambda: None)
        scratch.register("beta")(lambda: None)
        with pytest.raises(RegistryError) as excinfo:
            scratch.get("gamma")
        assert "unknown thing 'gamma'" in str(excinfo.value)
        assert "alpha, beta" in str(excinfo.value)

    def test_empty_registry_error_message(self, scratch):
        with pytest.raises(RegistryError, match="<none>"):
            scratch.get("x")

    def test_invalid_name_rejected(self, scratch):
        with pytest.raises(RegistryError):
            scratch.register("")
        with pytest.raises(RegistryError):
            scratch.register(None)

    def test_unregister(self, scratch):
        scratch.register("x")(lambda: None)
        scratch.unregister("x")
        assert "x" not in scratch
        with pytest.raises(RegistryError):
            scratch.unregister("x")

    def test_names_sorted_and_iterable(self, scratch):
        scratch.register("b")(lambda: None)
        scratch.register("a")(lambda: None)
        assert scratch.names() == ("a", "b")
        assert list(scratch) == ["a", "b"]
        assert len(scratch) == 2


class TestBuiltins:
    def test_builtin_schedulers_registered(self):
        assert set(scheduler_names()) >= {
            "binpack",
            "spread",
            "kube-default",
        }

    def test_builtin_workloads_registered(self):
        assert set(workload_names()) >= {
            "stress",
            "hybrid",
            "malicious",
        }

    def test_kube_default_drops_sgx_aware_knobs(self):
        scheduler = SCHEDULERS.get("kube-default")(
            use_measured=True, preserve_sgx_nodes=False, indexed=True
        )
        assert scheduler.use_measured is False
        assert scheduler.indexed is True


class TestPluginScheduler:
    """A ~10-line strategy plugs in and replays end to end."""

    def test_plugin_round_trip(self, small_trace):
        @register_scheduler("test-last-fit")
        class LastFitScheduler(Scheduler):
            name = "test-last-fit"

            def _select(self, pod, candidates, views):
                for view in sorted(
                    candidates, key=lambda v: v.name, reverse=True
                ):
                    requests = pod.spec.resources.requests
                    if requests.fits_within(view.available):
                        return view
                return None

        try:
            result = Scenario(
                scheduler="test-last-fit",
                trace=small_trace,
                sgx_fraction=0.5,
                seed=1,
            ).run()
            assert len(result.metrics.succeeded) == 40
        finally:
            SCHEDULERS.unregister("test-last-fit")
        with pytest.raises(Exception, match="test-last-fit"):
            Scenario(scheduler="test-last-fit")

    def test_scheduler_options_reach_plugin(self, small_trace):
        seen = {}

        @register_scheduler("test-knobbed")
        def knobbed(
            use_measured=True,
            strict_fcfs=False,
            preserve_sgx_nodes=True,
            indexed=False,
            flavour="plain",
        ):
            seen["flavour"] = flavour
            return SCHEDULERS.get("binpack")(
                use_measured=use_measured,
                strict_fcfs=strict_fcfs,
                preserve_sgx_nodes=preserve_sgx_nodes,
                indexed=indexed,
            )

        try:
            scheduler = Scenario(
                scheduler="test-knobbed",
                scheduler_options={"flavour": "spicy"},
            ).build_scheduler()
            assert scheduler is not None
            assert seen["flavour"] == "spicy"
        finally:
            SCHEDULERS.unregister("test-knobbed")


class TestPluginWorkload:
    def test_plugin_round_trip(self):
        @register_workload("test-two-pods")
        def two_pods(
            cluster,
            trace,
            *,
            sgx_fraction=0.0,
            seed=0,
            scheduler_name="default-scheduler",
            duration=30.0,
        ):
            plans = []
            for index in range(2):
                spec = make_pod_spec(
                    f"two-{index}",
                    duration_seconds=duration,
                    declared_memory_bytes=gib(1),
                    scheduler_name=scheduler_name,
                )
                plans.append(
                    SubmissionPlan(
                        submit_time=float(index),
                        spec=spec,
                        job_id=index,
                        is_sgx=False,
                    )
                )
            return plans

        try:
            result = Scenario(
                workload="test-two-pods",
                workload_options={"duration": 45.0},
                trace="borg-synth:jobs=1",  # built but unused by the plugin
            ).run()
            assert len(result.metrics.pods) == 2
            assert len(result.metrics.succeeded) == 2
            turnarounds = result.metrics.turnaround_times()
            assert all(t >= 45.0 for t in turnarounds)
        finally:
            WORKLOADS.unregister("test-two-pods")

    def test_malicious_workload_standalone(self):
        result = Scenario(
            workload="malicious",
            workload_options={
                "epc_occupancy": 0.25,
                "duration_seconds": 120.0,
            },
            trace="borg-synth:jobs=1",
        ).run()
        # One squatter per SGX node on the paper's 2-node inventory.
        assert len(result.metrics.pods) == 2
        assert all(
            pod.spec.labels.get("origin") == "malicious"
            for pod in result.metrics.pods
        )
