"""Hybrid trusted/untrusted workloads and their scheduling behaviour."""

import pytest

from repro.cluster.topology import paper_cluster
from repro.errors import TraceError
from repro.experiments.ext_hybrid import (
    format_ext_hybrid,
    run_ext_hybrid,
)
from repro.orchestrator.controller import Orchestrator
from repro.scheduler.binpack import BinpackScheduler
from repro.units import gib, mib, pages
from repro.workload.hybrid import HybridStressor, hybrid_pod_spec


class TestHybridStressor:
    def test_profile_has_both_dimensions(self):
        profile = HybridStressor(
            epc_bytes=mib(10), memory_bytes=gib(1)
        ).profile(60.0)
        assert profile.epc_pages == pages(mib(10))
        assert profile.memory_bytes == gib(1)
        assert profile.uses_sgx

    def test_trusted_part_required(self):
        with pytest.raises(TraceError, match="trusted part"):
            HybridStressor(epc_bytes=0, memory_bytes=gib(1))

    def test_negative_memory_rejected(self):
        with pytest.raises(TraceError):
            HybridStressor(epc_bytes=mib(1), memory_bytes=-1)


class TestHybridScheduling:
    def test_hybrid_pod_lands_on_sgx_node(self):
        orchestrator = Orchestrator(paper_cluster())
        pod = orchestrator.submit(
            hybrid_pod_spec(
                "hy",
                duration_seconds=60.0,
                declared_epc_bytes=mib(10),
                declared_memory_bytes=gib(2),
            ),
            now=0.0,
        )
        orchestrator.scheduling_pass(BinpackScheduler(), now=1.0)
        assert pod.node_name.startswith("sgx-worker")

    def test_both_dimensions_accounted(self):
        orchestrator = Orchestrator(paper_cluster())
        pod = orchestrator.submit(
            hybrid_pod_spec(
                "hy",
                duration_seconds=60.0,
                declared_epc_bytes=mib(10),
                declared_memory_bytes=gib(2),
            ),
            now=0.0,
        )
        orchestrator.scheduling_pass(BinpackScheduler(), now=1.0)
        orchestrator.start_pod(pod, now=1.5)
        node = orchestrator.cluster.node(pod.node_name)
        assert node.used_epc_pages() == pages(mib(10))
        assert node.used_memory_bytes() == gib(2)

    def test_ram_bound_hybrid_defers_despite_free_epc(self):
        # Four 4 GiB hybrid pods exceed one SGX node's 8 GiB; with tiny
        # EPC requests, memory is what defers the overflow.
        orchestrator = Orchestrator(paper_cluster())
        for index in range(5):
            orchestrator.submit(
                hybrid_pod_spec(
                    f"hy-{index}",
                    duration_seconds=600.0,
                    declared_epc_bytes=mib(1),
                    declared_memory_bytes=gib(4),
                ),
                now=0.0,
            )
        result = orchestrator.scheduling_pass(BinpackScheduler(), now=1.0)
        # 2 SGX nodes x 8 GiB fit two 4 GiB pods each; the fifth waits
        # even though the EPC is essentially empty.
        assert len(result.launched) == 4
        assert len(result.deferred) == 1


class TestHybridSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ext_hybrid(n_jobs=30, shares_gib=(0.0625, 4.0))

    def test_memory_binds_at_large_shares(self, result):
        small = result.runs[0.0625]
        large = result.runs[4.0]
        assert small.binding_resource == "epc"
        assert large.binding_resource == "memory"

    def test_epc_strands_as_memory_binds(self, result):
        assert (
            result.runs[4.0].peak_epc_utilization
            < result.runs[0.0625].peak_epc_utilization
        )

    def test_makespan_grows_with_memory_share(self, result):
        assert (
            result.runs[4.0].makespan_seconds
            >= result.runs[0.0625].makespan_seconds
        )

    def test_format(self, result):
        text = format_ext_hybrid(result)
        assert "binds" in text
