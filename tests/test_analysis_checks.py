"""Per-rule fire / no-fire fixtures for the static-analysis checks.

Every rule gets at least one fixture that must fire and one that must
stay silent; the suppression, baseline and bookkeeping (NOQA001 /
BASE001) machinery is exercised over real temporary trees through
:func:`repro.analysis.run_checks`.
"""

import json
import textwrap

import pytest

from repro.analysis import (
    CheckConfig,
    ModuleSource,
    Project,
    analyze_project,
    check_names,
    load_baseline,
    run_checks,
    write_baseline,
)
from repro.analysis.baseline import apply_baseline
from repro.analysis.findings import Finding
from repro.errors import SimulationError


def project(**modules):
    """An in-memory Project: ``{"scheduler/x.py": source}`` style,
    with double-underscores in keyword names standing in for ``/``."""
    sources = [
        ModuleSource(
            relpath.replace("__", "/") + ".py",
            textwrap.dedent(text),
        )
        for relpath, text in modules.items()
    ]
    return Project(root=None, modules=sources)


def rules_fired(proj, rules=None, config=CheckConfig()):
    return sorted(
        {f.rule for f in analyze_project(proj, config, rules=rules)}
    )


class TestDet001UnseededRandom:
    def test_global_random_call_fires(self):
        proj = project(util="""
            import random
            x = random.random()
        """)
        assert rules_fired(proj, ["DET001"]) == ["DET001"]

    def test_from_random_import_fires(self):
        proj = project(util="""
            from random import shuffle
        """)
        assert rules_fired(proj, ["DET001"]) == ["DET001"]

    def test_unseeded_random_instance_fires(self):
        proj = project(util="""
            import random
            rng = random.Random()
        """)
        assert rules_fired(proj, ["DET001"]) == ["DET001"]

    def test_numpy_global_fires(self):
        proj = project(util="""
            import numpy as np
            x = np.random.shuffle([1, 2])
        """)
        assert rules_fired(proj, ["DET001"]) == ["DET001"]

    def test_unseeded_default_rng_fires(self):
        proj = project(util="""
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert rules_fired(proj, ["DET001"]) == ["DET001"]

    def test_seeded_generators_are_clean(self):
        proj = project(util="""
            import random
            import numpy as np
            from random import Random

            rng = np.random.default_rng(42)
            other = random.Random(7)
            third = Random(9)
        """)
        assert rules_fired(proj, ["DET001"]) == []

    def test_annotation_is_not_a_draw(self):
        proj = project(util="""
            import numpy as np

            def f(rng: np.random.Generator) -> None:
                pass
        """)
        assert rules_fired(proj, ["DET001"]) == []


class TestDet002WallClock:
    def test_time_call_in_scoped_package_fires(self):
        proj = project(scheduler__core="""
            import time
            t = time.time()
        """)
        assert rules_fired(proj, ["DET002"]) == ["DET002"]

    def test_bare_reference_fires(self):
        proj = project(simulation__core="""
            import time
            clock = time.monotonic
        """)
        assert rules_fired(proj, ["DET002"]) == ["DET002"]

    def test_from_import_fires(self):
        proj = project(orchestrator__core="""
            from time import perf_counter
        """)
        assert rules_fired(proj, ["DET002"]) == ["DET002"]

    def test_datetime_now_fires(self):
        proj = project(monitoring__core="""
            import datetime
            stamp = datetime.datetime.now()
        """)
        assert rules_fired(proj, ["DET002"]) == ["DET002"]

    def test_out_of_scope_package_is_clean(self):
        proj = project(experiments__core="""
            import time
            t = time.time()
        """)
        assert rules_fired(proj, ["DET002"]) == []

    def test_profiling_module_is_exempt(self):
        config = CheckConfig(
            wall_clock_exempt=frozenset({"scheduler/profiling.py"})
        )
        proj = project(scheduler__profiling="""
            import time
            t = time.time()
        """)
        assert rules_fired(proj, ["DET002"], config) == []


class TestDet003SetIteration:
    def test_for_over_set_literal_fires(self):
        proj = project(scheduler__core="""
            for node in {"a", "b"}:
                print(node)
        """)
        assert rules_fired(proj, ["DET003"]) == ["DET003"]

    def test_comprehension_over_set_call_fires(self):
        proj = project(scheduler__core="""
            names = [n.upper() for n in set(["a", "b"])]
        """)
        assert rules_fired(proj, ["DET003"]) == ["DET003"]

    def test_set_typed_attribute_fires(self):
        proj = project(orchestrator__core="""
            from typing import Set

            class Tracker:
                live: Set[str]

                def drain(self):
                    return list(self.live)
        """)
        assert rules_fired(proj, ["DET003"]) == ["DET003"]

    def test_set_union_local_fires(self):
        proj = project(scheduler__core="""
            def merge(a, b):
                both = set(a) | set(b)
                for name in both:
                    print(name)
        """)
        assert rules_fired(proj, ["DET003"]) == ["DET003"]

    def test_sorted_wrapper_is_clean(self):
        proj = project(scheduler__core="""
            def drain(nodes):
                pending = set(nodes)
                for node in sorted(pending):
                    print(node)
                return sorted(pending)
        """)
        assert rules_fired(proj, ["DET003"]) == []

    def test_membership_and_len_are_clean(self):
        proj = project(scheduler__core="""
            def info(nodes, name):
                live = set(nodes)
                return name in live, len(live)
        """)
        assert rules_fired(proj, ["DET003"]) == []

    def test_out_of_scope_package_is_clean(self):
        proj = project(experiments__core="""
            for node in {"a", "b"}:
                print(node)
        """)
        assert rules_fired(proj, ["DET003"]) == []


class TestDet004IdentityOrder:
    def test_id_in_sort_key_fires(self):
        proj = project(scheduler__core="""
            def order(pods):
                return sorted(pods, key=lambda p: id(p))
        """)
        assert rules_fired(proj, ["DET004"]) == ["DET004"]

    def test_id_in_heap_entry_fires(self):
        proj = project(simulation__core="""
            import heapq

            def push(heap, item, when):
                heapq.heappush(heap, (when, id(item), item))
        """)
        assert rules_fired(proj, ["DET004"]) == ["DET004"]

    def test_id_in_comparison_fires(self):
        proj = project(scheduler__core="""
            def tie_break(a, b):
                return a if id(a) < id(b) else b
        """)
        assert rules_fired(proj, ["DET004"]) == ["DET004"]

    def test_id_as_dict_key_is_clean(self):
        # The spread scheduler's idiom: id() as a stable *within-pass*
        # dict key is deterministic; only ordering by it is not.
        proj = project(scheduler__core="""
            def positions(views):
                return {id(view): i for i, view in enumerate(views)}
        """)
        assert rules_fired(proj, ["DET004"]) == []

    def test_stable_sort_key_is_clean(self):
        proj = project(scheduler__core="""
            def order(pods):
                return sorted(pods, key=lambda p: (p.priority, p.name))
        """)
        assert rules_fired(proj, ["DET004"]) == []


HOT = CheckConfig(hot_layout_modules=frozenset({"scheduler/hot.py"}))


class TestLayout001Slots:
    def test_plain_class_fires(self):
        proj = project(scheduler__hot="""
            class Pod:
                def __init__(self):
                    self.name = "p"
        """)
        assert rules_fired(proj, ["LAYOUT001"], HOT) == ["LAYOUT001"]

    def test_dataclass_without_slots_fires(self):
        proj = project(scheduler__hot="""
            from dataclasses import dataclass

            @dataclass
            class Pod:
                name: str
        """)
        assert rules_fired(proj, ["LAYOUT001"], HOT) == ["LAYOUT001"]

    def test_slotted_variants_are_clean(self):
        proj = project(scheduler__hot="""
            from dataclasses import dataclass
            from typing import Protocol

            class Pod:
                __slots__ = ("name",)

            @dataclass(frozen=True, slots=True)
            class Spec:
                name: str

            class Source(Protocol):
                def read(self) -> str: ...
        """)
        assert rules_fired(proj, ["LAYOUT001"], HOT) == []

    def test_non_hot_module_is_clean(self):
        proj = project(scheduler__cold="""
            class Pod:
                pass
        """)
        assert rules_fired(proj, ["LAYOUT001"], HOT) == []


class TestLayout002SlottedBase:
    def test_non_slotted_project_base_fires(self):
        proj = project(scheduler__core="""
            class Base:
                pass

            class Hot(Base):
                __slots__ = ("x",)
        """)
        assert rules_fired(proj, ["LAYOUT002"]) == ["LAYOUT002"]

    def test_empty_slots_base_is_clean(self):
        proj = project(scheduler__core="""
            class Base:
                __slots__ = ()

            class Hot(Base):
                __slots__ = ("x",)
        """)
        assert rules_fired(proj, ["LAYOUT002"]) == []

    def test_abc_and_unknown_bases_are_clean(self):
        proj = project(scheduler__core="""
            import abc
            from elsewhere import External

            class Hot(abc.ABC):
                __slots__ = ("x",)

            class Other(External):
                __slots__ = ("y",)
        """)
        assert rules_fired(proj, ["LAYOUT002"]) == []


class TestReg001RegistryConformance:
    def test_duplicate_name_across_modules_fires(self):
        proj = project(
            workload__a="""
                from ..registry import register_workload

                @register_workload("stress")
                def plans_a(cluster, trace, **options):
                    return []
            """,
            workload__b="""
                from ..registry import register_workload

                @register_workload("stress")
                def plans_b(cluster, trace, **options):
                    return []
            """,
        )
        findings = analyze_project(proj, rules=["REG001"])
        assert any("duplicate" in f.message for f in findings)

    def test_missing_keyword_fires(self):
        proj = project(workload__a="""
            from ..registry import register_workload

            @register_workload("narrow")
            def plans(cluster, trace, sgx_fraction=0.0):
                return []
        """)
        findings = analyze_project(proj, rules=["REG001"])
        assert any("does not accept" in f.message for f in findings)

    def test_missing_positional_fires(self):
        proj = project(workload__a="""
            from ..registry import register_workload

            @register_workload("armless")
            def plans(**options):
                return []
        """)
        findings = analyze_project(proj, rules=["REG001"])
        assert any("positional" in f.message for f in findings)

    def test_kwargs_catch_all_is_clean(self):
        proj = project(workload__a="""
            from ..registry import register_workload

            @register_workload("wide")
            def plans(cluster, trace, **options):
                return []
        """)
        assert rules_fired(proj, ["REG001"]) == []

    def test_class_factory_resolves_inherited_init(self):
        proj = project(
            scheduler__base="""
                class Scheduler:
                    def __init__(self, use_measured=True,
                                 strict_fcfs=False,
                                 preserve_sgx_nodes=True,
                                 indexed=False):
                        pass
            """,
            scheduler__mine="""
                from ..registry import register_scheduler
                from .base import Scheduler

                @register_scheduler("mine")
                class MyScheduler(Scheduler):
                    pass
            """,
        )
        assert rules_fired(proj, ["REG001"]) == []

    def test_class_factory_missing_keyword_fires(self):
        proj = project(scheduler__mine="""
            from ..registry import register_scheduler

            @register_scheduler("mine")
            class MyScheduler:
                def __init__(self, use_measured=True):
                    pass
        """)
        findings = analyze_project(proj, rules=["REG001"])
        assert any("does not accept" in f.message for f in findings)

    def test_non_literal_name_fires(self):
        proj = project(workload__a="""
            from ..registry import register_workload

            NAME = "dynamic"

            @register_workload(NAME)
            def plans(cluster, trace, **options):
                return []
        """)
        findings = analyze_project(proj, rules=["REG001"])
        assert any("string literal" in f.message for f in findings)


class TestTrace001AdapterConformance:
    def test_duplicate_name_fires_with_first_location(self):
        proj = project(
            trace__adapters__a="""
                from ....registry import register_trace

                @register_trace("borg-synth")
                def build_a(spec, seed):
                    return None
            """,
            trace__adapters__b="""
                from ....registry import register_trace

                @register_trace("borg-synth")
                def build_b(spec, seed):
                    return None
            """,
        )
        findings = analyze_project(proj, rules=["TRACE001"])
        duplicates = [f for f in findings if "duplicate" in f.message]
        assert len(duplicates) == 1
        assert "trace/adapters/a.py" in duplicates[0].message

    def test_missing_seed_keyword_fires(self):
        proj = project(trace__adapters__a="""
            from ....registry import register_trace

            @register_trace("narrow")
            def build(spec):
                return None
        """)
        findings = analyze_project(proj, rules=["TRACE001"])
        assert any(
            "does not accept" in f.message and "seed" in f.message
            for f in findings
        )

    def test_kwargs_catch_all_is_clean(self):
        proj = project(trace__adapters__a="""
            from ....registry import register_trace

            @register_trace("wide")
            def build(**kwargs):
                return None
        """)
        assert rules_fired(proj, ["TRACE001"]) == []

    def test_spec_seed_signature_is_clean(self):
        proj = project(trace__adapters__a="""
            from ....registry import register_trace

            @register_trace("exact")
            def build(spec, seed):
                return None
        """)
        assert rules_fired(proj, ["TRACE001"]) == []

    def test_non_literal_name_fires(self):
        proj = project(trace__adapters__a="""
            from ....registry import register_trace

            NAME = "dynamic"

            @register_trace(NAME)
            def build(spec, seed):
                return None
        """)
        findings = analyze_project(proj, rules=["TRACE001"])
        assert any("string literal" in f.message for f in findings)

    def test_class_adapter_init_checked(self):
        proj = project(trace__adapters__a="""
            from ....registry import register_trace

            @register_trace("classy")
            class Adapter:
                def __init__(self, spec=None):
                    pass
        """)
        findings = analyze_project(proj, rules=["TRACE001"])
        assert any("seed" in f.message for f in findings)

    def test_other_registries_not_confused(self):
        # A workload factory has a different contract; TRACE001 must
        # ignore it even when REG001 would fire.
        proj = project(workload__a="""
            from ..registry import register_workload

            @register_workload("stress")
            def plans(cluster, trace, **options):
                return []
        """)
        assert rules_fired(proj, ["TRACE001"]) == []


class TestCell001PolicyConformance:
    def test_duplicate_name_fires_with_first_location(self):
        proj = project(
            cells__a="""
                from ..registry import register_cell_policy

                @register_cell_policy("balanced")
                def split_a(nodes, cells, seed):
                    return {}
            """,
            cells__b="""
                from ..registry import register_cell_policy

                @register_cell_policy("balanced")
                def split_b(nodes, cells, seed):
                    return {}
            """,
        )
        findings = analyze_project(proj, rules=["CELL001"])
        duplicates = [f for f in findings if "duplicate" in f.message]
        assert len(duplicates) == 1
        assert "cells/a.py" in duplicates[0].message

    def test_missing_seed_keyword_fires(self):
        proj = project(cells__a="""
            from ..registry import register_cell_policy

            @register_cell_policy("narrow")
            def split(nodes, cells):
                return {}
        """)
        findings = analyze_project(proj, rules=["CELL001"])
        assert any(
            "does not accept" in f.message and "seed" in f.message
            for f in findings
        )

    def test_kwargs_catch_all_is_clean(self):
        proj = project(cells__a="""
            from ..registry import register_cell_policy

            @register_cell_policy("wide")
            def split(**kwargs):
                return {}
        """)
        assert rules_fired(proj, ["CELL001"]) == []

    def test_exact_signature_is_clean(self):
        proj = project(cells__a="""
            from ..registry import register_cell_policy

            @register_cell_policy("exact")
            def split(nodes, cells, seed):
                return {}
        """)
        assert rules_fired(proj, ["CELL001"]) == []

    def test_non_literal_name_fires(self):
        proj = project(cells__a="""
            from ..registry import register_cell_policy

            NAME = "dynamic"

            @register_cell_policy(NAME)
            def split(nodes, cells, seed):
                return {}
        """)
        findings = analyze_project(proj, rules=["CELL001"])
        assert any("string literal" in f.message for f in findings)

    def test_class_policy_init_checked(self):
        proj = project(cells__a="""
            from ..registry import register_cell_policy

            @register_cell_policy("classy")
            class Splitter:
                def __init__(self, nodes=None, cells=None):
                    pass
        """)
        findings = analyze_project(proj, rules=["CELL001"])
        assert any("seed" in f.message for f in findings)

    def test_other_registries_not_confused(self):
        # Trace adapters have a different contract; CELL001 must
        # ignore them even when TRACE001 would fire.
        proj = project(trace__adapters__a="""
            from ....registry import register_trace

            @register_trace("narrow")
            def build(spec):
                return None
        """)
        assert rules_fired(proj, ["CELL001"]) == []


SCENARIO_FIXTURE = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class Scenario:
        scheduler: str = "binpack"
        seed: int = 0
        trace_jobs: int = 663
"""


class TestApi001CliDrift:
    def test_unmapped_flag_fires(self):
        proj = project(
            cli="""
                def _scenario_flags():
                    parser.add_argument("--scheduler")
                    parser.add_argument("--bogus-knob")
            """,
            api__scenario=SCENARIO_FIXTURE,
        )
        findings = analyze_project(proj, rules=["API001"])
        assert [f.rule for f in findings] == ["API001"]
        assert "bogus_knob" in findings[0].message.replace("-", "_")

    def test_aliases_and_cli_only_flags_are_clean(self):
        proj = project(
            cli="""
                def _scenario_flags():
                    parser.add_argument("--scheduler")
                    parser.add_argument("--jobs")
                    parser.add_argument("--json", action="store_true")
            """,
            api__scenario=SCENARIO_FIXTURE,
        )
        assert rules_fired(proj, ["API001"]) == []

    def test_flags_outside_the_shared_function_ignored(self):
        proj = project(
            cli="""
                def _other_flags():
                    parser.add_argument("--unrelated")
            """,
            api__scenario=SCENARIO_FIXTURE,
        )
        assert rules_fired(proj, ["API001"]) == []


def write_tree(root, files):
    for relpath, text in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))


class TestSuppressionsAndBaseline:
    def test_noqa_suppresses_and_counts(self, tmp_path):
        write_tree(tmp_path, {
            "scheduler/core.py": """
                for n in {"a", "b"}:  # repro: noqa[DET003]
                    print(n)
            """,
        })
        report = run_checks(tmp_path)
        assert report.clean
        assert report.suppressed_count == 1

    def test_noqa_for_wrong_rule_does_not_suppress(self, tmp_path):
        write_tree(tmp_path, {
            "scheduler/core.py": """
                for n in {"a", "b"}:  # repro: noqa[DET001]
                    print(n)
            """,
        })
        report = run_checks(tmp_path)
        rules = sorted(f.rule for f in report.findings)
        # The real finding survives AND the useless noqa is reported.
        assert rules == ["DET003", "NOQA001"]

    def test_unused_noqa_reported(self, tmp_path):
        write_tree(tmp_path, {
            "scheduler/core.py": """
                x = 1  # repro: noqa[DET003]
            """,
        })
        report = run_checks(tmp_path)
        assert [f.rule for f in report.findings] == ["NOQA001"]

    def test_baseline_grandfathers_by_message_not_line(self, tmp_path):
        write_tree(tmp_path, {
            "scheduler/core.py": """
                for n in {"a", "b"}:
                    print(n)
            """,
        })
        baseline_path = tmp_path / "baseline.json"
        report = run_checks(tmp_path)
        write_baseline(baseline_path, report.findings)
        # Shift the finding to a different line: still baselined.
        write_tree(tmp_path, {
            "scheduler/core.py": """
                padding = 0

                for n in {"a", "b"}:
                    print(n)
            """,
        })
        report = run_checks(
            tmp_path, baseline=load_baseline(baseline_path)
        )
        assert report.clean
        assert report.baselined_count == 1

    def test_stale_baseline_entry_reported(self, tmp_path):
        write_tree(tmp_path, {"scheduler/core.py": "x = 1\n"})
        baseline_path = tmp_path / "baseline.json"
        write_baseline(
            baseline_path,
            [Finding("DET003", "scheduler/core.py", 1, "gone")],
        )
        report = run_checks(
            tmp_path, baseline=load_baseline(baseline_path)
        )
        assert [f.rule for f in report.findings] == ["BASE001"]

    def test_baseline_multiset_semantics(self):
        finding = Finding("DET003", "a.py", 3, "same message")
        twin = Finding("DET003", "a.py", 9, "same message")
        baseline = {finding.baseline_key(): 1}
        new, baselined, stale = apply_baseline([finding, twin], baseline)
        assert baselined == 1
        assert len(new) == 1 and not stale

    def test_missing_baseline_file_raises(self, tmp_path):
        with pytest.raises(SimulationError):
            load_baseline(tmp_path / "absent.json")

    def test_baseline_round_trip_schema(self, tmp_path):
        path = tmp_path / "b.json"
        write_baseline(
            path, [Finding("DET001", "x.py", 1, "m", "h")]
        )
        document = json.loads(path.read_text())
        assert document["schema"] == "repro.check/v1"
        assert document["findings"] == [
            {"path": "x.py", "rule": "DET001", "message": "m"}
        ]


#: A minimal repro.ledger/v1 schema table fixture (the real one lives
#: in repro.obs.ledger; OBS001 reads whatever the configured module
#: declares, so fixtures carry their own).
_LEDGER_TABLE = """
    LEDGER_EVENT_KINDS = {
        "placement": ("pod", "node", "runner_ups"),
        "deferral": ("pod", "reason"),
    }
"""


class TestObs001LedgerConformance:
    def test_conforming_emit_stays_silent(self):
        proj = project(
            obs__ledger=_LEDGER_TABLE,
            scheduler__core="""
                def schedule(ledger, pod, now):
                    ledger.emit(now, "placement", pod=pod.name,
                                node="n1", runner_ups=2)
            """,
        )
        assert rules_fired(proj, ["OBS001"]) == []

    def test_undeclared_kind_fires(self):
        proj = project(
            obs__ledger=_LEDGER_TABLE,
            scheduler__core="""
                def schedule(ledger, now):
                    ledger.emit(now, "teleportation", pod="p")
            """,
        )
        assert rules_fired(proj, ["OBS001"]) == ["OBS001"]

    def test_undeclared_payload_field_fires(self):
        proj = project(
            obs__ledger=_LEDGER_TABLE,
            scheduler__core="""
                def schedule(ledger, pod, now):
                    ledger.emit(now, "deferral", pod=pod.name,
                                mood="gloomy")
            """,
        )
        (finding,) = analyze_project(proj, rules=["OBS001"])
        assert "mood" in finding.message

    def test_non_literal_kind_fires(self):
        proj = project(
            obs__ledger=_LEDGER_TABLE,
            scheduler__core="""
                def schedule(ledger, kind, now):
                    ledger.emit(now, kind, pod="p")
            """,
        )
        assert rules_fired(proj, ["OBS001"]) == ["OBS001"]

    def test_splat_payload_fires(self):
        proj = project(
            obs__ledger=_LEDGER_TABLE,
            scheduler__core="""
                def schedule(ledger, now, payload):
                    ledger.emit(now, "deferral", **payload)
            """,
        )
        assert rules_fired(proj, ["OBS001"]) == ["OBS001"]

    def test_live_object_payload_fires(self):
        proj = project(
            obs__ledger=_LEDGER_TABLE,
            scheduler__core="""
                def schedule(ledger, pod, now):
                    ledger.emit(now, "deferral", pod=pod,
                                reason="epc")
            """,
        )
        (finding,) = analyze_project(proj, rules=["OBS001"])
        assert "live engine object" in finding.message

    def test_attribute_receiver_is_scanned(self):
        proj = project(
            obs__ledger=_LEDGER_TABLE,
            scheduler__core="""
                def schedule(self, now):
                    self.obs.ledger.emit(now, "nope")
            """,
        )
        assert rules_fired(proj, ["OBS001"]) == ["OBS001"]

    def test_non_ledger_emit_ignored(self):
        proj = project(
            obs__ledger=_LEDGER_TABLE,
            scheduler__core="""
                def schedule(bus, now):
                    bus.emit(now, "anything-goes", payload=object())
            """,
        )
        assert rules_fired(proj, ["OBS001"]) == []

    def test_unparseable_table_fires_on_ledger_module(self):
        proj = project(
            obs__ledger="""
                def build():
                    return {}
                LEDGER_EVENT_KINDS = build()
            """,
        )
        (finding,) = analyze_project(proj, rules=["OBS001"])
        assert finding.path == "obs/ledger.py"
        assert "dict literal" in finding.message

    def test_real_tree_declares_every_emitted_kind(self):
        # Dogfood: the repository's own emit sites all conform.
        from pathlib import Path

        from repro.analysis import run_checks

        root = Path(__file__).resolve().parent.parent / "src" / "repro"
        report = run_checks(root, rules=["OBS001"])
        assert report.clean, [f.location() for f in report.findings]


class TestFramework:
    def test_all_rules_registered(self):
        assert list(check_names()) == [
            "API001", "CELL001", "DET001", "DET002", "DET003",
            "DET004", "LAYOUT001", "LAYOUT002", "OBS001", "REG001",
            "TRACE001",
        ]

    def test_unknown_rule_rejected(self):
        with pytest.raises(SimulationError, match="unknown rule"):
            analyze_project(project(a="x = 1"), rules=["NOPE999"])

    def test_findings_carry_hints_and_locations(self):
        proj = project(scheduler__core="""
            for n in {"a"}:
                print(n)
        """)
        (finding,) = analyze_project(proj, rules=["DET003"])
        assert finding.location() == "scheduler/core.py:2"
        assert "sorted" in finding.hint
