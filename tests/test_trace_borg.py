"""Synthetic Borg trace generator: calibration to the paper's marginals."""

import pytest

from repro.errors import TraceError
from repro.trace.borg import BorgTraceGenerator, synthetic_scaled_trace
from repro.trace.stats import cdf_at


class TestScaledTrace:
    def test_default_counts_match_paper(self):
        trace = synthetic_scaled_trace(seed=0)
        assert len(trace) == 663
        assert trace.overallocator_count == 44

    def test_submissions_within_hour_window(self):
        trace = synthetic_scaled_trace(seed=0)
        times = [j.submit_time for j in trace]
        assert min(times) >= 0.0
        assert max(times) < 3600.0

    def test_durations_within_cap(self):
        trace = synthetic_scaled_trace(seed=0)
        assert max(trace.durations()) <= 300.0

    def test_memory_within_cap(self):
        trace = synthetic_scaled_trace(seed=0)
        assert max(trace.max_memories()) <= 0.5
        assert min(trace.max_memories()) > 0.0

    def test_determinism(self):
        a = synthetic_scaled_trace(seed=5)
        b = synthetic_scaled_trace(seed=5)
        assert [(j.submit_time, j.duration) for j in a] == [
            (j.submit_time, j.duration) for j in b
        ]

    def test_seeds_differ(self):
        a = synthetic_scaled_trace(seed=1)
        b = synthetic_scaled_trace(seed=2)
        assert [j.duration for j in a] != [j.duration for j in b]

    def test_custom_counts(self):
        trace = BorgTraceGenerator(seed=0).scaled_trace(
            n_jobs=100, overallocators=10
        )
        assert len(trace) == 100
        assert trace.overallocator_count == 10

    def test_zero_overallocators(self):
        trace = BorgTraceGenerator(seed=0).scaled_trace(
            n_jobs=50, overallocators=0
        )
        assert trace.overallocator_count == 0

    def test_bad_counts_rejected(self):
        generator = BorgTraceGenerator()
        with pytest.raises(TraceError):
            generator.scaled_trace(n_jobs=0)
        with pytest.raises(TraceError):
            generator.scaled_trace(n_jobs=10, overallocators=11)


class TestMarginals:
    def test_duration_cdf_shape(self):
        durations, _ = BorgTraceGenerator(seed=0).marginal_samples(20_000)
        samples = durations.tolist()
        # Smooth CDF over [0, 300]; mean ~180 s.
        assert cdf_at(samples, 300.0) == 100.0
        assert 30.0 < cdf_at(samples, 150.0) < 55.0

    def test_memory_cdf_shape(self):
        _, memory = BorgTraceGenerator(seed=0).marginal_samples(20_000)
        samples = memory.tolist()
        # Fig. 3: most jobs below 0.1 of the reference machine.
        assert cdf_at(samples, 0.1) > 55.0
        assert cdf_at(samples, 0.5) == 100.0

    def test_validation(self):
        with pytest.raises(TraceError):
            BorgTraceGenerator(max_duration=0)
        with pytest.raises(TraceError):
            BorgTraceGenerator(max_memory_fraction=2.0)


class TestConcurrencySeries:
    def test_band_is_plausible(self):
        series = BorgTraceGenerator(seed=0).concurrency_series()
        values = [v for _, v in series]
        # Fig. 5's band: roughly 125k-145k concurrent jobs.
        assert 115_000 < min(values)
        assert max(values) < 155_000

    def test_covers_24_hours(self):
        series = BorgTraceGenerator(seed=0).concurrency_series(
            hours=24.0, step_seconds=600.0
        )
        assert series[0][0] == 0.0
        assert series[-1][0] == pytest.approx(24 * 3600.0)

    def test_deterministic(self):
        a = BorgTraceGenerator(seed=3).concurrency_series(hours=2.0)
        b = BorgTraceGenerator(seed=3).concurrency_series(hours=2.0)
        assert a == b

    def test_arrival_rate_dips_in_slice(self):
        generator = BorgTraceGenerator(seed=0)
        slice_rate = generator.arrival_rate(8280.0)
        later_rate = generator.arrival_rate(50_000.0)
        assert slice_rate < later_rate
