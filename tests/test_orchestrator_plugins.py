"""RPC channel, device plugin registration, DaemonSet reconciliation."""

import pytest

from repro.cluster.node import Node, NodeSpec
from repro.errors import RpcError
from repro.orchestrator.api import SGX_EPC_RESOURCE
from repro.orchestrator.daemonset import (
    DaemonSetController,
    all_nodes_selector,
    sgx_node_selector,
)
from repro.orchestrator.device_plugin import (
    DevicePluginRegistry,
    SgxDevicePlugin,
)
from repro.orchestrator.kubelet import Kubelet
from repro.orchestrator.rpc import RpcChannel, RpcServer


class TestRpc:
    def test_call_dispatches(self):
        server = RpcServer("svc")
        server.register_method("Echo", lambda text: text.upper())
        channel = RpcChannel(server)
        assert channel.call("Echo", text="hi") == "HI"

    def test_unknown_method_rejected(self):
        channel = RpcChannel(RpcServer("svc"))
        with pytest.raises(RpcError, match="UNIMPLEMENTED"):
            channel.call("Nope")

    def test_stopped_server_unavailable(self):
        server = RpcServer("svc")
        server.register_method("M", lambda: 1)
        server.stop()
        with pytest.raises(RpcError, match="UNAVAILABLE"):
            RpcChannel(server).call("M")

    def test_duplicate_method_rejected(self):
        server = RpcServer("svc")
        server.register_method("M", lambda: 1)
        with pytest.raises(RpcError):
            server.register_method("M", lambda: 2)


class TestDevicePlugin:
    def test_detect_on_sgx_node(self, sgx_node):
        advertisement = SgxDevicePlugin(sgx_node).detect()
        assert advertisement is not None
        assert advertisement.resource_name == SGX_EPC_RESOURCE
        # Each EPC page is one resource item (Section V-A).
        assert advertisement.item_count == 23_936
        assert advertisement.device_path == "/dev/isgx"

    def test_detect_on_standard_node(self, standard_node):
        assert SgxDevicePlugin(standard_node).detect() is None

    def test_register_with_kubelet(self, sgx_node):
        kubelet = Kubelet(sgx_node)
        registered = SgxDevicePlugin(sgx_node).register(
            RpcChannel(kubelet.rpc_server)
        )
        assert registered
        assert kubelet.advertised_epc_pages() == 23_936
        assert kubelet.devices.device_path(SGX_EPC_RESOURCE) == "/dev/isgx"

    def test_register_skips_non_sgx(self, standard_node):
        kubelet = Kubelet(standard_node)
        registered = SgxDevicePlugin(standard_node).register(
            RpcChannel(kubelet.rpc_server)
        )
        assert not registered
        assert kubelet.advertised_epc_pages() == 0

    def test_registry_validates_counts(self):
        registry = DevicePluginRegistry()
        with pytest.raises(RpcError):
            registry.register("x", -1, "/dev/x")

    def test_registry_listing(self):
        registry = DevicePluginRegistry()
        registry.register("b", 1, "/dev/b")
        registry.register("a", 2, "/dev/a")
        assert registry.resource_names == ["a", "b"]


class TestDaemonSet:
    def make_kubelets(self):
        sgx = Kubelet(Node(NodeSpec.sgx("sgx-0")))
        std = Kubelet(Node(NodeSpec.standard("std-0")))
        for kubelet in (sgx, std):
            SgxDevicePlugin(kubelet.node).register(
                RpcChannel(kubelet.rpc_server)
            )
        return sgx, std

    def test_sgx_selector_uses_advertised_epc(self):
        sgx, std = self.make_kubelets()
        assert sgx_node_selector(sgx)
        assert not sgx_node_selector(std)

    def test_reconcile_creates_payload_per_matching_node(self):
        sgx, std = self.make_kubelets()
        controller = DaemonSetController()
        daemonset = controller.create(
            "probe", sgx_node_selector, lambda k: f"probe@{k.node.name}"
        )
        changes = controller.reconcile([sgx, std])
        assert changes == 1
        assert daemonset.payload_for("sgx-0") == "probe@sgx-0"
        assert daemonset.payload_for("std-0") is None

    def test_reconcile_is_idempotent(self):
        sgx, std = self.make_kubelets()
        controller = DaemonSetController()
        controller.create("probe", sgx_node_selector, lambda k: object())
        controller.reconcile([sgx, std])
        assert controller.reconcile([sgx, std]) == 0

    def test_reconcile_reaps_departed_nodes(self):
        sgx, std = self.make_kubelets()
        controller = DaemonSetController()
        controller.create("probe", sgx_node_selector, lambda k: object())
        controller.reconcile([sgx, std])
        changes = controller.reconcile([std])
        assert changes == 1
        assert controller.payloads("probe") == []

    def test_all_nodes_selector(self):
        sgx, std = self.make_kubelets()
        controller = DaemonSetController()
        controller.create("agent", all_nodes_selector, lambda k: object())
        controller.reconcile([sgx, std])
        assert len(controller.payloads("agent")) == 2

    def test_duplicate_daemonset_rejected(self):
        controller = DaemonSetController()
        controller.create("x", all_nodes_selector, lambda k: None)
        with pytest.raises(ValueError):
            controller.create("x", all_nodes_selector, lambda k: None)
