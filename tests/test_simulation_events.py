"""Event log: records, selections, tallies."""

from repro.simulation.events import EventKind, EventLog


def make_log() -> EventLog:
    log = EventLog()
    log.record(0.0, EventKind.SUBMITTED, pod_name="a")
    log.record(1.0, EventKind.SCHEDULING_PASS)
    log.record(1.0, EventKind.BOUND, pod_name="a", node_name="n1")
    log.record(1.2, EventKind.STARTED, pod_name="a", node_name="n1")
    log.record(5.0, EventKind.SUBMITTED, pod_name="b")
    log.record(61.2, EventKind.COMPLETED, pod_name="a", node_name="n1")
    return log


class TestEventLog:
    def test_len_and_iteration(self):
        log = make_log()
        assert len(log) == 6
        assert [e.time for e in log] == [0.0, 1.0, 1.0, 1.2, 5.0, 61.2]

    def test_of_kind(self):
        log = make_log()
        submitted = log.of_kind(EventKind.SUBMITTED)
        assert [e.pod_name for e in submitted] == ["a", "b"]

    def test_for_pod(self):
        log = make_log()
        kinds = [e.kind for e in log.for_pod("a")]
        assert kinds == [
            EventKind.SUBMITTED,
            EventKind.BOUND,
            EventKind.STARTED,
            EventKind.COMPLETED,
        ]

    def test_counts(self):
        counts = make_log().counts()
        assert counts[EventKind.SUBMITTED] == 2
        assert counts[EventKind.COMPLETED] == 1
        assert EventKind.REJECTED not in counts

    def test_detail_carried(self):
        log = EventLog()
        log.record(
            0.0, EventKind.LAUNCH_KILLED, pod_name="x", detail="limit"
        )
        assert log.events[0].detail == "limit"

    def test_node_name_carried(self):
        log = make_log()
        bound = log.of_kind(EventKind.BOUND)[0]
        assert bound.node_name == "n1"
