"""Orchestrator-level live migration of SGX pods."""

import pytest

from repro.cluster.topology import paper_cluster
from repro.errors import OrchestrationError
from repro.orchestrator.api import PodPhase, make_pod_spec
from repro.orchestrator.controller import Orchestrator
from repro.scheduler.binpack import BinpackScheduler
from repro.units import mib, pages


@pytest.fixture
def orchestrator():
    return Orchestrator(paper_cluster())


def running_sgx_pod(orchestrator, name="svc", epc_mib=20.0, now=0.0):
    pod = orchestrator.submit(
        make_pod_spec(
            name, duration_seconds=600.0, declared_epc_bytes=mib(epc_mib)
        ),
        now=now,
    )
    result = orchestrator.scheduling_pass(BinpackScheduler(), now=now + 1.0)
    assert any(p is pod for p, _ in result.launched)
    orchestrator.start_pod(pod, now=now + 1.5)
    return pod


def other_sgx_node(pod):
    return (
        "sgx-worker-1"
        if pod.node_name == "sgx-worker-0"
        else "sgx-worker-0"
    )


class TestMigration:
    def test_pages_move_with_the_pod(self, orchestrator):
        pod = running_sgx_pod(orchestrator)
        source = pod.node_name
        target = other_sgx_node(pod)
        orchestrator.migrate_pod(pod, target, now=100.0)
        assert pod.node_name == target
        assert orchestrator.cluster.node(source).used_epc_pages() == 0
        assert orchestrator.cluster.node(target).used_epc_pages() == pages(
            mib(20)
        )

    def test_downtime_is_positive_and_bounded(self, orchestrator):
        pod = running_sgx_pod(orchestrator)
        downtime = orchestrator.migrate_pod(
            pod, other_sgx_node(pod), now=100.0
        )
        # PSW boot (~100 ms) + transfer + allocation: sub-second for a
        # 20 MiB enclave.
        assert 0.1 < downtime < 1.0

    def test_pod_stays_running_and_completes(self, orchestrator):
        pod = running_sgx_pod(orchestrator)
        orchestrator.migrate_pod(pod, other_sgx_node(pod), now=100.0)
        assert pod.phase is PodPhase.RUNNING
        orchestrator.complete_pod(pod, now=700.0)
        assert pod.phase is PodPhase.SUCCEEDED
        assert pod.turnaround_seconds == 700.0

    def test_monitoring_follows_the_pod(self, orchestrator):
        from repro.monitoring.probe import MEASUREMENT_EPC

        pod = running_sgx_pod(orchestrator)
        target = other_sgx_node(pod)
        orchestrator.migrate_pod(pod, target, now=100.0)
        orchestrator.collect_metrics(now=101.0)
        point = orchestrator.db.latest(
            MEASUREMENT_EPC, tags={"pod_name": pod.name}
        )
        assert point is not None
        assert point.tag("nodename") == target

    def test_limits_travel_with_the_pod(self, orchestrator):
        pod = running_sgx_pod(orchestrator)
        source_node = orchestrator.cluster.node(pod.node_name)
        target = other_sgx_node(pod)
        orchestrator.migrate_pod(pod, target, now=100.0)
        target_driver = orchestrator.cluster.node(target).driver
        assert target_driver.pod_limit(pod.cgroup_path) == pages(mib(20))
        # Source forgot the old cgroup's limit.
        assert all(
            source_node.driver.pod_limit(path) is None
            for path in [pod.cgroup_path]
        )


class TestMigrationValidation:
    def test_migrate_to_same_node_rejected(self, orchestrator):
        pod = running_sgx_pod(orchestrator)
        with pytest.raises(OrchestrationError):
            orchestrator.migrate_pod(pod, pod.node_name, now=100.0)

    def test_migrate_to_unknown_node_rejected(self, orchestrator):
        pod = running_sgx_pod(orchestrator)
        with pytest.raises(OrchestrationError, match="no such node"):
            orchestrator.migrate_pod(pod, "ghost", now=100.0)

    def test_migrate_to_non_sgx_node_rejected(self, orchestrator):
        pod = running_sgx_pod(orchestrator)
        with pytest.raises(OrchestrationError, match="no SGX support"):
            orchestrator.migrate_pod(pod, "worker-0", now=100.0)

    def test_standard_pod_cannot_migrate(self, orchestrator):
        from repro.units import gib

        pod = orchestrator.submit(
            make_pod_spec(
                "std", duration_seconds=600.0,
                declared_memory_bytes=gib(1),
            ),
            now=0.0,
        )
        orchestrator.scheduling_pass(BinpackScheduler(), now=1.0)
        orchestrator.start_pod(pod, now=1.5)
        from repro.errors import NodeError

        with pytest.raises(NodeError, match="no enclave"):
            orchestrator.migrate_pod(pod, "sgx-worker-0", now=100.0)

    def test_migration_target_full_raises_and_fails_pod(self):
        # Fill the target completely; restore cannot fit.
        orchestrator = Orchestrator(paper_cluster())
        victim = running_sgx_pod(orchestrator, "victim", epc_mib=60.0)
        target = other_sgx_node(victim)
        blocker = orchestrator.submit(
            make_pod_spec(
                "blocker",
                duration_seconds=600.0,
                declared_epc_bytes=mib(90),
            ),
            now=2.0,
        )
        result = orchestrator.scheduling_pass(BinpackScheduler(), now=3.0)
        assert any(p is blocker for p, _ in result.launched)
        assert blocker.node_name == target
        orchestrator.start_pod(blocker, now=3.5)
        with pytest.raises(OrchestrationError, match="failed"):
            orchestrator.migrate_pod(victim, target, now=100.0)
        assert victim.phase is PodPhase.FAILED
