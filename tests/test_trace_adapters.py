"""The trace-adapter registry: resolution, determinism, public formats."""

import json

import pytest

from repro.constants import DEFAULT_TRACE_SEED
from repro.errors import RegistryError, TraceError
from repro.registry import TRACES, register_trace, trace_names
from repro.trace import (
    Trace,
    load_borg_csv,
    resolve_trace,
    synthetic_scaled_trace,
    trace_catalogue,
)
from repro.trace.loader import dump_borg_csv

BUILTIN_ADAPTERS = (
    "alibaba2018",
    "azure-packing",
    "borg-csv",
    "borg-synth",
    "google2019",
    "synth-bursty",
    "synth-diurnal",
    "synth-heavytail",
    "synth-ramp",
)
PATHLESS = (
    "borg-synth",
    "synth-bursty",
    "synth-diurnal",
    "synth-heavytail",
    "synth-ramp",
)


class TestRegistry:
    def test_all_builtins_registered(self):
        assert set(BUILTIN_ADAPTERS) <= set(trace_names())

    def test_catalogue_covers_every_adapter(self):
        entries = trace_catalogue()
        assert [e.name for e in entries] == sorted(trace_names())
        for entry in entries:
            assert entry.summary, entry.name
            assert entry.spec_example.startswith(entry.name)

    def test_catalogue_needs_path_flags(self):
        by_name = {e.name: e for e in trace_catalogue()}
        for name in PATHLESS:
            assert by_name[name].needs_path is False
        for name in ("borg-csv", "google2019", "alibaba2018",
                     "azure-packing"):
            assert by_name[name].needs_path is True

    def test_unknown_adapter_lists_known(self):
        with pytest.raises(RegistryError) as excinfo:
            resolve_trace("warp-drive:seed=1")
        message = str(excinfo.value)
        assert "unknown trace adapter 'warp-drive'" in message
        for name in BUILTIN_ADAPTERS:
            assert name in message

    def test_plugin_registration_round_trip(self):
        @register_trace("test-tiny")
        def build_tiny(spec, seed):
            return synthetic_scaled_trace(
                seed=seed, n_jobs=3, overallocators=0
            )

        try:
            trace = resolve_trace("test-tiny:seed=5")
            assert len(trace) == 3
        finally:
            TRACES.unregister("test-tiny")
        assert "test-tiny" not in TRACES

    def test_duplicate_registration_rejected(self):
        with pytest.raises(RegistryError, match="already registered"):
            register_trace("borg-synth")(lambda spec, seed: None)

    def test_non_trace_return_rejected(self):
        @register_trace("test-bad-return")
        def build_bad(spec, seed):
            return [1, 2, 3]

        try:
            with pytest.raises(TraceError, match="expected Trace"):
                resolve_trace("test-bad-return")
        finally:
            TRACES.unregister("test-bad-return")


class TestDeterminism:
    @pytest.mark.parametrize("name", PATHLESS)
    def test_same_spec_same_trace(self, name):
        first = resolve_trace(f"{name}:seed=3,jobs=120")
        second = resolve_trace(f"{name}:seed=3,jobs=120")
        assert list(first) == list(second)
        assert len(first) == 120

    @pytest.mark.parametrize("name", PATHLESS)
    def test_seed_changes_trace(self, name):
        first = resolve_trace(f"{name}:seed=3,jobs=120")
        second = resolve_trace(f"{name}:seed=4,jobs=120")
        assert list(first) != list(second)

    @pytest.mark.parametrize("name", PATHLESS)
    def test_default_seed_is_default_trace_seed(self, name):
        bare = resolve_trace(f"{name}:jobs=60")
        pinned = resolve_trace(
            f"{name}:jobs=60,seed={DEFAULT_TRACE_SEED}"
        )
        assert list(bare) == list(pinned)

    @pytest.mark.parametrize("name", PATHLESS)
    def test_submit_times_valid(self, name):
        trace = resolve_trace(f"{name}:seed=3,jobs=120")
        times = [job.submit_time for job in trace]
        assert times == sorted(times)
        assert times[0] >= 0.0


class TestBorgSynth:
    def test_matches_legacy_generator_bit_for_bit(self):
        spec = resolve_trace("borg-synth:seed=7,jobs=60")
        legacy = synthetic_scaled_trace(
            seed=7, n_jobs=60, overallocators=round(60 * 44 / 663)
        )
        assert list(spec) == list(legacy)

    def test_defaults_match_paper_slice(self):
        trace = resolve_trace("borg-synth")
        legacy = synthetic_scaled_trace(seed=DEFAULT_TRACE_SEED)
        assert list(trace) == list(legacy)
        assert len(trace) == 663
        assert trace.overallocator_count == 44

    def test_overallocators_pinnable(self):
        trace = resolve_trace("borg-synth:seed=7,jobs=60,overallocators=9")
        assert trace.overallocator_count == 9

    def test_window_option(self):
        trace = resolve_trace("borg-synth:seed=7,jobs=60,window=2h")
        assert trace[-1].submit_time <= 7200.0

    def test_unknown_option_dies_with_accepted(self):
        with pytest.raises(TraceError, match="unknown option"):
            resolve_trace("borg-synth:warp=9")


class TestSynthShapes:
    def test_bursty_mass_concentrates(self):
        trace = resolve_trace(
            "synth-bursty:seed=3,jobs=400,bursts=2,base_fraction=0.1"
        )
        # 90% of jobs sit in 2 narrow bursts: the busiest tenth of the
        # window must hold far more than a uniform share.
        window = 3600.0
        times = [job.submit_time for job in trace]
        bins = [0] * 10
        for t in times:
            bins[min(9, int(t / window * 10))] += 1
        assert max(bins) > len(times) * 0.25

    def test_heavytail_durations_spread(self):
        trace = resolve_trace("synth-heavytail:seed=3,jobs=400")
        durations = sorted(trace.durations())
        # Log-normal with sigma=1.6: the p95/p50 ratio is far beyond
        # anything the bounded Beta duration model produces.
        assert durations[379] / durations[199] > 5.0

    def test_ramp_rate_grows(self):
        trace = resolve_trace("synth-ramp:seed=3,jobs=400,factor=9")
        half = 1800.0
        early = sum(1 for j in trace if j.submit_time < half)
        late = len(trace) - early
        assert late > early * 1.5

    def test_diurnal_window_default_is_a_day(self):
        trace = resolve_trace("synth-diurnal:seed=3,jobs=200")
        assert trace[-1].submit_time <= 86_400.0
        assert trace[-1].submit_time > 3600.0

    @pytest.mark.parametrize(
        "spec,detail",
        [
            ("synth-diurnal:amplitude=1.5", "amplitude"),
            ("synth-bursty:jobs=10,overallocators=20", "overallocators"),
            ("synth-heavytail:sigma=0", "sigma"),
            ("synth-ramp:factor=0.5", "factor"),
            ("synth-bursty:window=0", "window"),
        ],
    )
    def test_option_validation(self, spec, detail):
        with pytest.raises(TraceError, match=detail):
            resolve_trace(spec)


class TestBorgCsv:
    def test_plain_load_equals_loader(self, tmp_path, small_trace):
        path = tmp_path / "trace.csv"
        dump_borg_csv(small_trace, path)
        via_spec = resolve_trace(f"borg-csv:path={path}")
        assert list(via_spec) == list(load_borg_csv(path))

    def test_window_and_limit(self, tmp_path, small_trace):
        path = tmp_path / "trace.csv"
        dump_borg_csv(small_trace, path)
        clipped = resolve_trace(f"borg-csv:path={path},window=10m")
        origin = small_trace[0].submit_time
        kept = [
            j for j in small_trace if j.submit_time - origin < 600.0
        ]
        assert len(clipped) == len(kept)
        # Scaling renumbers to t=0 by default.
        assert clipped[0].submit_time == 0.0
        limited = resolve_trace(f"borg-csv:path={path},limit=5")
        assert len(limited) == 5

    def test_stride_matches_python_slicing(self, tmp_path, small_trace):
        path = tmp_path / "trace.csv"
        dump_borg_csv(small_trace, path)
        strided = resolve_trace(
            f"borg-csv:path={path},stride=4,renumber=false"
        )
        expected = small_trace.jobs[::4]
        assert [j.job_id for j in strided] == [
            j.job_id for j in expected
        ]

    def test_sample_fraction_maps_to_stride(self, tmp_path, small_trace):
        path = tmp_path / "trace.csv"
        dump_borg_csv(small_trace, path)
        sampled = resolve_trace(
            f"borg-csv:path={path},sample=0.25,renumber=false"
        )
        strided = resolve_trace(
            f"borg-csv:path={path},stride=4,renumber=false"
        )
        assert list(sampled) == list(strided)

    def test_sample_stride_conflict(self, tmp_path, small_trace):
        path = tmp_path / "trace.csv"
        dump_borg_csv(small_trace, path)
        with pytest.raises(TraceError, match="sample.*stride"):
            resolve_trace(f"borg-csv:path={path},sample=0.5,stride=2")

    def test_missing_file(self):
        with pytest.raises(TraceError, match="not found"):
            resolve_trace("borg-csv:path=/nope/missing.csv")


def _google_event(kind, collection, time_us, **extra):
    record = {"type": kind, "collection_id": collection, "time": time_us}
    record.update(extra)
    return json.dumps(record)


class TestGoogle2019:
    def test_submit_finish_join(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            "\n".join(
                [
                    _google_event(
                        "SUBMIT", 1, 1_000_000,
                        resource_request={"memory": 0.25},
                    ),
                    _google_event(
                        "SUBMIT", 2, 2_000_000,
                        resource_request={"memory": 0.5},
                    ),
                    _google_event("SCHEDULE", 1, 1_500_000),
                    _google_event(
                        "FINISH", 1, 11_000_000,
                        maximum_usage={"memory": 0.2},
                    ),
                    _google_event("FINISH", 2, 32_000_000),
                    # FINISH without SUBMIT: dump starts mid-trace.
                    _google_event("FINISH", 99, 5_000_000),
                ]
            )
        )
        trace = resolve_trace(f"google2019:path={path}")
        assert len(trace) == 2
        first, second = trace.jobs
        # Renumbered to t=0; collection 1 submitted first.
        assert first.submit_time == 0.0
        assert first.duration == 10.0
        assert first.assigned_memory == 0.25
        assert first.max_memory == 0.2
        # No maximum_usage: falls back to the request.
        assert second.max_memory == 0.5
        assert second.duration == 30.0

    def test_bad_json_carries_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(TraceError, match=r"events\.jsonl:1"):
            resolve_trace(f"google2019:path={path}")

    def test_memory_fraction_validated(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            _google_event(
                "SUBMIT", 1, 0, resource_request={"memory": 2.5}
            )
        )
        with pytest.raises(TraceError, match="outside"):
            resolve_trace(f"google2019:path={path}")


ALIBABA_HEADER = (
    "task_name,instance_num,job_name,task_type,status,"
    "start_time,end_time,plan_cpu,plan_mem"
)


class TestAlibaba2018:
    def rows(self, *rows):
        return "\n".join((ALIBABA_HEADER,) + rows)

    def test_terminated_rows_only(self, tmp_path):
        path = tmp_path / "batch_task.csv"
        path.write_text(
            self.rows(
                "t1,1,j1,A,Terminated,100,160,50,25",
                "t2,1,j1,A,Running,100,,50,25",
                "t3,1,j2,A,Failed,100,110,50,25",
                "t4,1,j2,A,Terminated,200,230,50,50",
            )
        )
        trace = resolve_trace(f"alibaba2018:path={path}")
        assert len(trace) == 2
        assert trace[0].duration == 60.0
        assert trace[0].assigned_memory == 0.25
        assert trace[1].submit_time == 100.0  # renumbered from 200

    def test_usage_scale_option(self, tmp_path):
        path = tmp_path / "batch_task.csv"
        path.write_text(
            self.rows("t1,1,j1,A,Terminated,100,160,50,40")
        )
        trace = resolve_trace(
            f"alibaba2018:path={path},usage_scale=0.5"
        )
        assert trace[0].assigned_memory == 0.4
        assert trace[0].max_memory == 0.2

    def test_non_numeric_field_carries_line(self, tmp_path):
        path = tmp_path / "batch_task.csv"
        path.write_text(
            self.rows("t1,1,j1,A,Terminated,xyz,160,50,25")
        )
        with pytest.raises(TraceError, match=r"batch_task\.csv:2"):
            resolve_trace(f"alibaba2018:path={path}")

    def test_plan_mem_out_of_range(self, tmp_path):
        path = tmp_path / "batch_task.csv"
        path.write_text(
            self.rows("t1,1,j1,A,Terminated,100,160,50,250")
        )
        with pytest.raises(TraceError, match="plan_mem"):
            resolve_trace(f"alibaba2018:path={path}")


AZURE_HEADER = (
    "vmid,subscriptionid,deploymentid,vmcreated,vmdeleted,maxcpu,"
    "avgcpu,p95maxcpu,vmcategory,vmcorecountbucket,vmmemorybucket"
)


class TestAzurePacking:
    def rows(self, *rows):
        return "\n".join((AZURE_HEADER,) + rows)

    def test_vm_rows_with_memory_buckets(self, tmp_path):
        path = tmp_path / "vmtable.csv"
        path.write_text(
            self.rows(
                "vm1,s1,d1,0,3600,50,10,40,Delay-insensitive,4,32",
                "vm2,s1,d1,300,7500,50,10,40,Interactive,8,>64",
                # Never deleted: still running at the end of the dump.
                "vm3,s1,d1,600,,50,10,40,Interactive,2,8",
            )
        )
        trace = resolve_trace(f"azure-packing:path={path}")
        assert len(trace) == 2
        assert trace[0].assigned_memory == 0.5  # 32 of 64 GiB
        assert trace[1].assigned_memory == 1.0  # top bucket clamps
        assert trace[1].duration == 7200.0

    def test_machine_memory_option(self, tmp_path):
        path = tmp_path / "vmtable.csv"
        path.write_text(
            self.rows("vm1,s1,d1,0,3600,50,10,40,X,4,32")
        )
        trace = resolve_trace(
            f"azure-packing:path={path},machine_memory_gib=128,"
            "utilization=0.5"
        )
        assert trace[0].assigned_memory == 0.25
        assert trace[0].max_memory == 0.125

    def test_short_row_dies_with_line(self, tmp_path):
        path = tmp_path / "vmtable.csv"
        path.write_text(self.rows("vm1,s1,d1,0,3600"))
        with pytest.raises(TraceError, match=r"vmtable\.csv:2"):
            resolve_trace(f"azure-packing:path={path}")


class TestResolveTypes:
    def test_accepts_parsed_spec(self):
        from repro.trace.spec import parse_trace_spec

        spec = parse_trace_spec("borg-synth:seed=7,jobs=30")
        assert list(resolve_trace(spec)) == list(
            resolve_trace("borg-synth:seed=7,jobs=30")
        )

    def test_returns_trace(self):
        assert isinstance(resolve_trace("borg-synth:jobs=10"), Trace)
