"""Trace data model and aggregate properties."""

import pytest

from repro.errors import TraceError
from repro.trace.schema import JobRecord, Trace


def job(job_id=1, submit=0.0, duration=10.0, assigned=0.1, used=0.05):
    return JobRecord(
        job_id=job_id,
        submit_time=submit,
        duration=duration,
        assigned_memory=assigned,
        max_memory=used,
    )


class TestJobRecord:
    def test_end_time(self):
        assert job(submit=5.0, duration=10.0).end_time == 15.0

    def test_overallocates(self):
        assert job(assigned=0.1, used=0.2).overallocates
        assert not job(assigned=0.2, used=0.1).overallocates

    def test_shifted(self):
        shifted = job(submit=10.0).shifted(-4.0)
        assert shifted.submit_time == 6.0

    def test_negative_submit_rejected(self):
        with pytest.raises(TraceError):
            job(submit=-1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(TraceError):
            job(duration=0.0)

    def test_memory_fraction_bounds(self):
        with pytest.raises(TraceError):
            job(assigned=1.5)
        with pytest.raises(TraceError):
            job(used=-0.1)


class TestTrace:
    def test_sorted_by_submit_time(self):
        trace = Trace([job(1, submit=5.0), job(2, submit=1.0)])
        assert [j.job_id for j in trace] == [2, 1]

    def test_len_and_getitem(self):
        trace = Trace([job(i) for i in range(3)])
        assert len(trace) == 3
        assert trace[0].job_id == 0

    def test_span(self):
        trace = Trace([
            job(1, submit=0.0, duration=10.0),
            job(2, submit=5.0, duration=20.0),
        ])
        assert trace.span_seconds == 25.0

    def test_empty_span(self):
        assert Trace().span_seconds == 0.0

    def test_total_duration(self):
        trace = Trace([job(1, duration=10.0), job(2, duration=20.0)])
        assert trace.total_duration_seconds == 30.0

    def test_overallocator_count(self):
        trace = Trace(
            [job(1, assigned=0.1, used=0.2), job(2, assigned=0.2, used=0.1)]
        )
        assert trace.overallocator_count == 1

    def test_concurrency_at(self):
        trace = Trace(
            [
                job(1, submit=0.0, duration=10.0),
                job(2, submit=5.0, duration=10.0),
            ]
        )
        assert trace.concurrency_at(7.0) == 2
        assert trace.concurrency_at(12.0) == 1
        assert trace.concurrency_at(20.0) == 0

    def test_samples(self):
        trace = Trace([job(1, duration=10.0, used=0.3)])
        assert trace.durations() == [10.0]
        assert trace.max_memories() == [0.3]
