"""Integration: the paper's headline result shapes on the full workload.

These are the claims EXPERIMENTS.md records; each test replays the full
663-job trace, so this file is the slow end of the suite (~30 s total).
Absolute numbers are simulator-dependent; orderings and rough ratios are
what the paper's conclusions rest on.
"""

import pytest

from repro.experiments.common import default_trace
from repro.simulation.runner import ReplayConfig, replay_trace
from repro.units import mib
from repro.workload.malicious import MaliciousConfig

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def trace():
    return default_trace()


@pytest.fixture(scope="module")
def runs(trace):
    """The replays shared across assertions (computed once)."""
    def run(**kwargs):
        return replay_trace(trace, ReplayConfig(seed=1, **kwargs))

    return {
        "std": run(scheduler="binpack", sgx_fraction=0.0),
        "mix50": run(scheduler="binpack", sgx_fraction=0.5),
        "sgx": run(scheduler="binpack", sgx_fraction=1.0),
        "spread-sgx": run(scheduler="spread", sgx_fraction=1.0),
    }


class TestFig8Shapes:
    def test_no_sgx_run_waits_little(self, runs):
        assert runs["std"].metrics.mean_waiting_seconds() < 30.0

    def test_half_sgx_close_to_no_sgx(self, runs):
        # "incorporating a reasonable number of SGX jobs has close to
        # zero impact on the scheduling"
        assert runs["mix50"].metrics.mean_waiting_seconds() < 60.0

    def test_pure_sgx_run_goes_off_the_chart(self, runs):
        sgx = runs["sgx"].metrics
        std = runs["std"].metrics
        assert sgx.mean_waiting_seconds() > 10 * std.mean_waiting_seconds()
        # Paper: longest wait 4696 s; ours lands in the same regime.
        assert 1000.0 < sgx.max_waiting_seconds() < 10_000.0


class TestFig10Shapes:
    def test_turnaround_ordering(self, trace, runs):
        trace_hours = trace.total_duration_seconds / 3600.0
        std = runs["std"].metrics.total_turnaround_hours()
        sgx = runs["sgx"].metrics.total_turnaround_hours()
        assert trace_hours < std < sgx

    def test_sgx_roughly_twice_standard(self, runs):
        ratio = (
            runs["sgx"].metrics.total_turnaround_hours()
            / runs["std"].metrics.total_turnaround_hours()
        )
        # Paper: 210/111 ~= 1.9 under binpack.
        assert 1.4 < ratio < 3.0

    def test_spread_not_better_than_binpack_for_sgx(self, runs):
        assert (
            runs["spread-sgx"].metrics.total_turnaround_hours()
            >= 0.95 * runs["sgx"].metrics.total_turnaround_hours()
        )


class TestFig7Shapes:
    @pytest.fixture(scope="class")
    def makespans(self, trace):
        spans = {}
        for size in (32, 64, 128, 256):
            result = replay_trace(
                trace,
                ReplayConfig(
                    scheduler="binpack",
                    sgx_fraction=1.0,
                    seed=1,
                    epc_total_bytes=mib(size),
                ),
            )
            spans[size] = result.metrics.makespan_seconds
        return spans

    def test_makespan_monotone_decreasing_in_epc(self, makespans):
        assert makespans[32] > makespans[64] > makespans[128]
        assert makespans[128] >= makespans[256]

    def test_256mib_shows_no_contention(self, makespans):
        # Paper: the batch finishes in the trace hour at 256 MiB.
        assert makespans[256] < 1.25 * 3600.0

    def test_128mib_matches_papers_regime(self, makespans):
        # Paper: 1 h 22 min at 128 MiB (~1.37 h).
        assert 3600.0 < makespans[128] < 2.2 * 3600.0

    def test_halving_epc_roughly_doubles_drain(self, makespans):
        assert 1.5 < makespans[64] / makespans[128] < 3.0
        assert 1.3 < makespans[32] / makespans[64] < 3.0


class TestFig11Shapes:
    @pytest.fixture(scope="class")
    def fig11_runs(self, trace):
        def run(enforce, occupancy):
            malicious = (
                MaliciousConfig(epc_occupancy=occupancy)
                if occupancy
                else None
            )
            return replay_trace(
                trace,
                ReplayConfig(
                    scheduler="binpack",
                    sgx_fraction=0.5,
                    seed=1,
                    enforce_epc_limits=enforce,
                    epc_allow_overcommit=not enforce,
                    malicious=malicious,
                ),
            )

        return {
            "reference": run(False, 0.0),
            "squat25": run(False, 0.25),
            "squat50": run(False, 0.5),
            "enforced": run(True, 0.5),
        }

    def test_waits_grow_with_squatter_size(self, fig11_runs):
        reference = fig11_runs["reference"].metrics.mean_waiting_seconds()
        squat25 = fig11_runs["squat25"].metrics.mean_waiting_seconds()
        squat50 = fig11_runs["squat50"].metrics.mean_waiting_seconds()
        assert reference < squat25 < squat50

    def test_enforcement_annihilates_squatters(self, fig11_runs):
        enforced = fig11_runs["enforced"].metrics.mean_waiting_seconds()
        squat50 = fig11_runs["squat50"].metrics.mean_waiting_seconds()
        assert enforced < 0.25 * squat50

    def test_enforcement_beats_reference_by_killing_overallocators(
        self, fig11_runs
    ):
        # Paper: the limits-enabled run beats even the trace-only run
        # because the 44 over-allocators are killed at launch.
        enforced = fig11_runs["enforced"]
        assert len(enforced.metrics.failed) >= 20
        assert (
            enforced.metrics.mean_waiting_seconds()
            <= fig11_runs["reference"].metrics.mean_waiting_seconds()
        )


class TestMeasuredVsDeclaredAblation:
    def test_measured_usage_beats_declared_only(self, trace):
        """The paper's central design point: scheduling on *measured*
        usage reclaims the headroom that inflated declarations waste.

        The declared-only baseline reserves each job's (over-)declared
        request for its whole life, under-packing the scarce EPC; the
        measured scheduler re-packs from live probe data and turns the
        reclaimed capacity into shorter queues and an earlier finish.
        """
        measured = replay_trace(
            trace,
            ReplayConfig(scheduler="binpack", sgx_fraction=1.0, seed=1),
        )
        declared = replay_trace(
            trace,
            ReplayConfig(
                scheduler="kube-default", sgx_fraction=1.0, seed=1
            ),
        )
        assert (
            measured.metrics.mean_waiting_seconds()
            < 0.8 * declared.metrics.mean_waiting_seconds()
        )
        assert (
            measured.metrics.makespan_seconds
            < declared.metrics.makespan_seconds
        )
