"""Experiment CLI."""

import pytest

from repro.cli import _FIGURES, build_parser, main


class TestParser:
    def test_all_figures_are_commands(self):
        parser = build_parser()
        for name in _FIGURES:
            args = parser.parse_args([name])
            assert args.command == name

    def test_seed_flags(self):
        args = build_parser().parse_args(
            ["fig7", "--trace-seed", "7", "--run-seed", "9"]
        )
        assert args.trace_seed == 7
        assert args.run_seed == 9

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in _FIGURES:
            assert name in out

    def test_fig6_runs(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "PSW" in out

    def test_fig3_runs(self, capsys):
        assert main(["fig3"]) == 0
        assert "CDF" in capsys.readouterr().out

    def test_fig5_respects_trace_seed(self, capsys):
        assert main(["fig5", "--trace-seed", "5"]) == 0
        first = capsys.readouterr().out
        assert main(["fig5", "--trace-seed", "5"]) == 0
        second = capsys.readouterr().out
        assert first == second
