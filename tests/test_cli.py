"""Experiment CLI."""

import subprocess
import sys

import pytest

from repro.cli import _FIGURES, build_parser, main


class TestParser:
    def test_all_figures_are_commands(self):
        parser = build_parser()
        for name in _FIGURES:
            args = parser.parse_args([name])
            assert args.command == name

    def test_seed_flags(self):
        args = build_parser().parse_args(
            ["fig7", "--trace-seed", "7", "--run-seed", "9"]
        )
        assert args.trace_seed == 7
        assert args.run_seed == 9

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestFailurePaths:
    """Exit codes of every way the CLI can be invoked wrongly.

    Usage errors must exit 2 (argparse convention), never 0 and never
    an unhandled traceback — the console script forwards ``main``'s
    return value / ``SystemExit`` straight to the shell.
    """

    def test_no_command_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
        assert "usage:" in capsys.readouterr().err

    def test_unknown_command_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig99"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err

    def test_non_integer_seed_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig7", "--trace-seed", "banana"])
        assert excinfo.value.code == 2
        assert "invalid int value" in capsys.readouterr().err

    def test_unknown_flag_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig7", "--not-a-flag"])
        assert excinfo.value.code == 2
        assert "unrecognized arguments" in capsys.readouterr().err

    def test_seed_flag_without_value_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig7", "--trace-seed"])
        assert excinfo.value.code == 2
        assert "expected one argument" in capsys.readouterr().err

    def test_help_exits_0(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "Regenerate the evaluation figures" in (
            capsys.readouterr().out
        )

    def test_module_entry_point_propagates_usage_error(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "fig99"],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 2
        assert "invalid choice" in completed.stderr

    def test_module_entry_point_list(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0
        assert "fig7" in completed.stdout


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in _FIGURES:
            assert name in out

    def test_fig6_runs(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "PSW" in out

    def test_fig3_runs(self, capsys):
        assert main(["fig3"]) == 0
        assert "CDF" in capsys.readouterr().out

    def test_fig5_respects_trace_seed(self, capsys):
        assert main(["fig5", "--trace-seed", "5"]) == 0
        first = capsys.readouterr().out
        assert main(["fig5", "--trace-seed", "5"]) == 0
        second = capsys.readouterr().out
        assert first == second
