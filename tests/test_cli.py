"""Experiment CLI."""

import json
import subprocess
import sys

import pytest

from repro.cli import _FIGURES, build_parser, main


class TestParser:
    def test_all_figures_are_commands(self):
        parser = build_parser()
        for name in _FIGURES:
            args = parser.parse_args([name])
            assert args.command == name

    def test_seed_flags(self):
        args = build_parser().parse_args(
            ["fig7", "--trace-seed", "7", "--run-seed", "9"]
        )
        assert args.trace_seed == 7
        assert args.run_seed == 9

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestFailurePaths:
    """Exit codes of every way the CLI can be invoked wrongly.

    Usage errors must exit 2 (argparse convention), never 0 and never
    an unhandled traceback — the console script forwards ``main``'s
    return value / ``SystemExit`` straight to the shell.
    """

    def test_no_command_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
        assert "usage:" in capsys.readouterr().err

    def test_unknown_command_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig99"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err

    def test_non_integer_seed_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig7", "--trace-seed", "banana"])
        assert excinfo.value.code == 2
        assert "invalid int value" in capsys.readouterr().err

    def test_unknown_flag_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig7", "--not-a-flag"])
        assert excinfo.value.code == 2
        assert "unrecognized arguments" in capsys.readouterr().err

    def test_seed_flag_without_value_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig7", "--trace-seed"])
        assert excinfo.value.code == 2
        assert "expected one argument" in capsys.readouterr().err

    def test_help_exits_0(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "Regenerate the evaluation figures" in (
            capsys.readouterr().out
        )

    def test_module_entry_point_propagates_usage_error(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "fig99"],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 2
        assert "invalid choice" in completed.stderr

    def test_module_entry_point_list(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0
        assert "fig7" in completed.stdout


class TestScenarioCommands:
    """``repro run`` / ``repro sweep``: usage and execution paths.

    Execution tests shrink the trace with ``--jobs`` so each replay
    stays sub-second; usage errors must exit 2 like every other
    malformed invocation.
    """

    def test_run_unknown_scheduler_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--scheduler", "nope", "--jobs", "10"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown scheduler 'nope'" in err
        assert "binpack" in err  # the known names are listed

    def test_run_unknown_workload_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--workload", "nope", "--jobs", "10"])
        assert excinfo.value.code == 2
        assert "unknown workload 'nope'" in capsys.readouterr().err

    def test_run_bad_fraction_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--sgx-fraction", "1.5", "--jobs", "10"])
        assert excinfo.value.code == 2
        assert "sgx_fraction" in capsys.readouterr().err

    def test_run_non_numeric_fraction_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--sgx-fraction", "banana"])
        assert excinfo.value.code == 2
        assert "invalid float value" in capsys.readouterr().err

    def test_sweep_requires_grid(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--jobs", "10"])
        assert excinfo.value.code == 2
        assert "--grid" in capsys.readouterr().err

    def test_sweep_malformed_grid_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--grid", "sgx_fraction", "--jobs", "10"])
        assert excinfo.value.code == 2
        assert "FIELD=V1,V2" in capsys.readouterr().err

    def test_sweep_unknown_grid_field_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--grid", "warp_factor=9", "--jobs", "10"])
        assert excinfo.value.code == 2
        assert "warp_factor" in capsys.readouterr().err

    def test_sweep_non_numeric_epc_mib_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--grid", "epc_mib=abc", "--jobs", "10"])
        assert excinfo.value.code == 2
        assert "epc_mib" in capsys.readouterr().err

    def test_sweep_structurally_bad_grid_value_exits_2(self, capsys):
        # node_failures=5 passes _coerce but the Scenario field wants
        # (time, node) pairs; the TypeError must surface as exit 2.
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--grid", "node_failures=5", "--jobs", "10"])
        assert excinfo.value.code == 2
        assert "usage:" in capsys.readouterr().err

    def test_sweep_duplicate_grid_axis_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "sweep",
                    "--grid",
                    "sgx_fraction=0",
                    "--grid",
                    "sgx_fraction=0.5",
                    "--jobs",
                    "10",
                ]
            )
        assert excinfo.value.code == 2
        assert "given twice" in capsys.readouterr().err

    def test_sweep_bad_workers_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "sweep",
                    "--grid",
                    "sgx_fraction=0",
                    "--workers",
                    "0",
                    "--jobs",
                    "10",
                ]
            )
        assert excinfo.value.code == 2
        assert "workers" in capsys.readouterr().err

    def test_run_prints_table(self, capsys):
        assert main(["run", "--jobs", "12", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "makespan_s" in out
        assert "binpack/stress" in out

    def test_run_json_document(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--jobs",
                    "12",
                    "--sgx-fraction",
                    "0.5",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.run/1"
        assert payload["sgx_fraction"] == 0.5
        assert payload["completed"] == 12

    def test_sweep_runs_grid_in_order(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--jobs",
                    "12",
                    "--grid",
                    "sgx_fraction=0,1",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.sweep/1"
        assert [r["sgx_fraction"] for r in payload["results"]] == [0, 1]

    def test_sweep_parallel_matches_serial(self, capsys):
        argv = [
            "sweep",
            "--jobs",
            "12",
            "--grid",
            "scheduler=binpack,spread",
            "--json",
        ]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_cluster_workers_agree_between_run_and_sweep(self, capsys):
        # `run --workers N` is shorthand for --cluster-workers N; a
        # sweep over a single point with the same cluster scale must
        # reproduce the run exactly (pool --workers never changes the
        # simulated cluster).
        assert (
            main(
                [
                    "run",
                    "--jobs",
                    "12",
                    "--sgx-fraction",
                    "0.5",
                    "--workers",
                    "3",
                    "--json",
                ]
            )
            == 0
        )
        run_row = json.loads(capsys.readouterr().out)
        assert (
            main(
                [
                    "sweep",
                    "--jobs",
                    "12",
                    "--cluster-workers",
                    "3",
                    "--grid",
                    "sgx_fraction=0.5",
                    "--workers",
                    "2",
                    "--json",
                ]
            )
            == 0
        )
        sweep_row = json.loads(capsys.readouterr().out)["results"][0]
        assert sweep_row["makespan_s"] == run_row["makespan_s"]
        assert sweep_row["mean_wait_s"] == run_row["mean_wait_s"]

    def test_sweep_epc_mib_alias(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--jobs",
                    "12",
                    "--grid",
                    "epc_mib=128,256",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert [r["epc_mib"] for r in payload["results"]] == [
            128.0,
            256.0,
        ]


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in _FIGURES:
            assert name in out
        assert "run" in out and "sweep" in out

    def test_fig6_runs(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "PSW" in out

    def test_fig3_runs(self, capsys):
        assert main(["fig3"]) == 0
        assert "CDF" in capsys.readouterr().out

    def test_fig5_respects_trace_seed(self, capsys):
        assert main(["fig5", "--trace-seed", "5"]) == 0
        first = capsys.readouterr().out
        assert main(["fig5", "--trace-seed", "5"]) == 0
        second = capsys.readouterr().out
        assert first == second


class TestCellFlags:
    def test_run_with_cells_prints_spillovers(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--jobs",
                    "12",
                    "--cells",
                    "2",
                    "--cell-policy",
                    "balanced",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["cells"] == 2
        assert payload["cell_policy"] == "balanced"
        assert "cell_spillovers" in payload

    def test_run_without_cells_reports_single_cell(self, capsys):
        assert main(["run", "--jobs", "12", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cells"] == 1

    def test_run_zero_cells_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--jobs", "12", "--cells", "0"])
        assert excinfo.value.code == 2
        assert "cells must be >= 1" in capsys.readouterr().err

    def test_run_unknown_cell_policy_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "run",
                    "--jobs",
                    "12",
                    "--cells",
                    "2",
                    "--cell-policy",
                    "nope",
                ]
            )
        assert excinfo.value.code == 2
        assert "unknown cell policy" in capsys.readouterr().err

    def test_sweep_over_cells_axis(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--jobs",
                    "12",
                    "--grid",
                    "cells=1,2",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert [r["cells"] for r in payload["results"]] == [1, 2]


def _record(tmp_path, name, *extra):
    """Record a tiny run's ledger via the CLI; return the path."""
    path = str(tmp_path / (name + ".jsonl"))
    argv = ["record", "--jobs", "12", "--ledger", path, *extra]
    assert main(argv) == 0
    return path


class TestObservabilityCommands:
    """``repro record`` / ``diff`` / ``explain``: exit-code contract.

    0 on success (for ``diff``: identical decision streams), 1 when
    ``diff`` finds a divergence, 2 on usage errors — a missing ledger
    file, an unknown pod name, a malformed flag.
    """

    def test_help_lists_the_three_commands(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for name in ("record", "diff", "explain"):
            assert name in out

    def test_list_includes_observability_commands(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "record" in out and "diff" in out and "explain" in out

    def test_record_writes_ledger(self, tmp_path, capsys):
        path = _record(tmp_path, "run")
        out = capsys.readouterr().out
        assert f"ledger written to {path}" in out
        with open(path) as handle:
            header = json.loads(handle.readline())
        assert header["schema"] == "repro.ledger/v1"

    def test_record_json_reports_export_paths(self, tmp_path, capsys):
        ledger = str(tmp_path / "run.jsonl")
        trace = str(tmp_path / "run.trace.json")
        assert (
            main(
                [
                    "record",
                    "--jobs",
                    "12",
                    "--ledger",
                    ledger,
                    "--trace-out",
                    trace,
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["ledger"] == ledger
        assert payload["trace"] == trace
        assert payload["metrics"] is None

    def test_record_requires_ledger_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["record", "--jobs", "12"])
        assert excinfo.value.code == 2
        assert "--ledger" in capsys.readouterr().err

    def test_record_unwritable_ledger_exits_2(self, tmp_path, capsys):
        target = str(tmp_path / "no" / "such" / "dir" / "run.jsonl")
        with pytest.raises(SystemExit) as excinfo:
            main(["record", "--jobs", "12", "--ledger", target])
        assert excinfo.value.code == 2

    def test_diff_identical_exits_0(self, tmp_path, capsys):
        left = _record(tmp_path, "a")
        right = _record(tmp_path, "b")
        capsys.readouterr()
        assert main(["diff", left, right]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_divergent_exits_1(self, tmp_path, capsys):
        # At sgx_fraction=0.5 the run seed redraws which pods are SGX,
        # so a seed pair diverges decision-for-decision.
        left = _record(tmp_path, "a", "--sgx-fraction", "0.5")
        right = _record(
            tmp_path, "b", "--sgx-fraction", "0.5", "--seed", "9"
        )
        capsys.readouterr()
        assert main(["diff", left, right]) == 1
        out = capsys.readouterr().out
        assert "first divergence" in out

    def test_diff_json_document(self, tmp_path, capsys):
        left = _record(tmp_path, "a", "--sgx-fraction", "0.5")
        right = _record(
            tmp_path, "b", "--sgx-fraction", "0.5", "--seed", "9"
        )
        capsys.readouterr()
        assert main(["diff", left, right, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.ledger/v1"
        assert payload["identical"] is False
        assert payload["first_divergence"] is not None

    def test_diff_missing_ledger_exits_2(self, tmp_path, capsys):
        left = _record(tmp_path, "a")
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            main(["diff", left, str(tmp_path / "absent.jsonl")])
        assert excinfo.value.code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_diff_negative_context_exits_2(self, tmp_path, capsys):
        left = _record(tmp_path, "a")
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            main(["diff", left, left, "--context", "-1"])
        assert excinfo.value.code == 2
        assert "--context" in capsys.readouterr().err

    def test_explain_known_pod_exits_0(self, tmp_path, capsys):
        path = _record(tmp_path, "run")
        with open(path) as handle:
            placement = next(
                json.loads(line)
                for line in handle
                if '"kind":"placement"' in line
            )
        capsys.readouterr()
        assert (
            main(["explain", "--ledger", path, "--pod", placement["pod"]])
            == 0
        )
        assert f"pod {placement['pod']}" in capsys.readouterr().out

    def test_explain_unknown_pod_exits_2(self, tmp_path, capsys):
        path = _record(tmp_path, "run")
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            main(["explain", "--ledger", path, "--pod", "no-such-pod"])
        assert excinfo.value.code == 2
        assert "no event" in capsys.readouterr().err

    def test_explain_missing_ledger_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "explain",
                    "--ledger",
                    str(tmp_path / "absent.jsonl"),
                    "--pod",
                    "x",
                ]
            )
        assert excinfo.value.code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_explain_requires_pod_flag(self, tmp_path, capsys):
        path = _record(tmp_path, "run")
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            main(["explain", "--ledger", path])
        assert excinfo.value.code == 2
        assert "--pod" in capsys.readouterr().err
