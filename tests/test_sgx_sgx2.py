"""SGX 2 (EDMM): dynamic enclaves and the ported limit enforcement."""

import pytest

from repro.errors import (
    DriverError,
    EnclaveLimitExceededError,
    EnclaveStateError,
    EpcExhaustedError,
    SgxError,
)
from repro.sgx.aesm import AesmService
from repro.sgx.driver import SgxDriver
from repro.sgx.epc import EnclavePageCache
from repro.sgx.sgx2 import Sgx2Enclave
from repro.units import mib, pages

POD = "/kubepods/burstable/podsgx2"


@pytest.fixture
def epc() -> EnclavePageCache:
    return EnclavePageCache()


@pytest.fixture
def driver(epc) -> SgxDriver:
    driver = SgxDriver(epc, sgx_version=2)
    driver.register_process(1, POD)
    return driver


@pytest.fixture
def aesm() -> AesmService:
    service = AesmService()
    service.start()
    return service


def initialized_dynamic_enclave(driver, aesm, size=mib(8)):
    enclave = driver.create_enclave(1, size_bytes=size, dynamic=True)
    driver.initialize_enclave(1, enclave, aesm)
    return enclave


class TestEpcResizePrimitives:
    def test_grow_allocation(self, epc):
        alloc = epc.allocate("pod", 100)
        grown = epc.grow_allocation(alloc, 50)
        assert grown.pages == 150
        assert epc.allocated_pages == 150

    def test_grow_respects_strict_capacity(self, epc):
        alloc = epc.allocate("pod", epc.total_pages)
        with pytest.raises(EpcExhaustedError):
            epc.grow_allocation(alloc, 1)

    def test_grow_overcommit_pages_out(self):
        epc = EnclavePageCache(allow_overcommit=True)
        alloc = epc.allocate("pod", epc.total_pages)
        grown = epc.grow_allocation(alloc, 100)
        assert grown.paged_out_pages == 100

    def test_shrink_allocation(self, epc):
        alloc = epc.allocate("pod", 100)
        shrunk = epc.shrink_allocation(alloc, 40)
        assert shrunk.pages == 60
        assert epc.allocated_pages == 60

    def test_shrink_to_zero_rejected(self, epc):
        alloc = epc.allocate("pod", 100)
        with pytest.raises(SgxError, match="destroy"):
            epc.shrink_allocation(alloc, 100)

    def test_resize_dead_allocation_rejected(self, epc):
        alloc = epc.allocate("pod", 100)
        epc.release(alloc)
        with pytest.raises(SgxError):
            epc.grow_allocation(alloc, 1)
        with pytest.raises(SgxError):
            epc.shrink_allocation(alloc, 1)


class TestSgx2Enclave:
    def test_grow_after_init(self, driver, aesm, epc):
        enclave = initialized_dynamic_enclave(driver, aesm, size=mib(8))
        added = enclave.grow(mib(4))
        assert added == pages(mib(4))
        assert enclave.pages == pages(mib(8)) + pages(mib(4))
        assert epc.allocated_pages == enclave.pages

    def test_grow_before_init_rejected(self, driver):
        enclave = driver.create_enclave(1, size_bytes=mib(8), dynamic=True)
        with pytest.raises(EnclaveStateError, match="initialized"):
            enclave.grow(mib(1))

    def test_shrink_returns_pages(self, driver, aesm, epc):
        enclave = initialized_dynamic_enclave(driver, aesm, size=mib(8))
        enclave.shrink(mib(4))
        assert epc.allocated_pages == pages(mib(4))

    def test_sgx1_enclave_still_cannot_grow(self, aesm):
        epc = EnclavePageCache()
        driver = SgxDriver(epc, sgx_version=1)
        driver.register_process(1, POD)
        enclave = driver.create_enclave(1, size_bytes=mib(8))
        driver.initialize_enclave(1, enclave, aesm)
        with pytest.raises(EnclaveStateError, match="SGX 2"):
            enclave.grow(mib(1))

    def test_destroy_releases_grown_pages(self, driver, aesm, epc):
        enclave = initialized_dynamic_enclave(driver, aesm, size=mib(8))
        enclave.grow(mib(16))
        enclave.destroy()
        assert epc.allocated_pages == 0


class TestDriverSgx2Gating:
    def test_dynamic_enclave_rejected_on_sgx1(self):
        driver = SgxDriver(EnclavePageCache(), sgx_version=1)
        driver.register_process(1, POD)
        with pytest.raises(DriverError, match="SGX 1 mode"):
            driver.create_enclave(1, size_bytes=mib(8), dynamic=True)

    def test_bad_version_rejected(self):
        with pytest.raises(DriverError):
            SgxDriver(EnclavePageCache(), sgx_version=3)

    def test_grow_requires_dynamic_enclave(self, driver, aesm):
        static = driver.create_enclave(1, size_bytes=mib(8))
        driver.initialize_enclave(1, static, aesm)
        with pytest.raises(DriverError, match="dynamic"):
            driver.grow_enclave(1, static, mib(1))

    def test_shrink_requires_dynamic_enclave(self, driver, aesm):
        static = driver.create_enclave(1, size_bytes=mib(8))
        driver.initialize_enclave(1, static, aesm)
        with pytest.raises(DriverError, match="dynamic"):
            driver.shrink_enclave(1, static, mib(1))

    def test_foreign_enclave_rejected(self, driver, aesm):
        driver.register_process(2, "/kubepods/burstable/podother")
        enclave = initialized_dynamic_enclave(driver, aesm)
        with pytest.raises(DriverError, match="belong"):
            driver.grow_enclave(2, enclave, mib(1))


class TestPortedLimitEnforcement:
    """The paper's Sec. VI-G port: limits gate dynamic growth too."""

    def test_growth_within_limit_allowed(self, driver, aesm):
        driver.set_pod_limit(POD, pages(mib(16)))
        enclave = initialized_dynamic_enclave(driver, aesm, size=mib(8))
        assert driver.grow_enclave(1, enclave, mib(4)) == pages(mib(4))

    def test_growth_past_limit_denied(self, driver, aesm):
        driver.set_pod_limit(POD, pages(mib(10)))
        enclave = initialized_dynamic_enclave(driver, aesm, size=mib(8))
        with pytest.raises(EnclaveLimitExceededError):
            driver.grow_enclave(1, enclave, mib(4))
        # The denied growth left the enclave untouched.
        assert enclave.pages == pages(mib(8))

    def test_shrink_then_grow_within_limit(self, driver, aesm):
        driver.set_pod_limit(POD, pages(mib(10)))
        enclave = initialized_dynamic_enclave(driver, aesm, size=mib(8))
        driver.shrink_enclave(1, enclave, mib(6))
        assert driver.grow_enclave(1, enclave, mib(8)) == pages(mib(8))

    def test_no_enforcement_no_denial(self, aesm):
        driver = SgxDriver(
            EnclavePageCache(), enforce_limits=False, sgx_version=2
        )
        driver.register_process(1, POD)
        driver.set_pod_limit(POD, 1)
        enclave = initialized_dynamic_enclave(driver, aesm, size=mib(8))
        driver.grow_enclave(1, enclave, mib(4))  # no denial

    def test_limit_counts_all_pod_enclaves(self, driver, aesm):
        driver.set_pod_limit(POD, pages(mib(20)))
        first = initialized_dynamic_enclave(driver, aesm, size=mib(8))
        initialized_dynamic_enclave(driver, aesm, size=mib(8))
        with pytest.raises(EnclaveLimitExceededError):
            driver.grow_enclave(1, first, mib(8))


class TestIsolation:
    def test_sgx2_enclave_is_an_enclave(self, driver, aesm):
        enclave = initialized_dynamic_enclave(driver, aesm)
        assert isinstance(enclave, Sgx2Enclave)
        assert enclave.ecall("f").startswith("ok:")
