"""Time-series database: writes, scans, retention."""

import pytest

from repro.errors import MonitoringError
from repro.monitoring.tsdb import Point, TimeSeriesDatabase


class TestPoints:
    def test_make_normalizes_tags(self):
        a = Point.make(1.0, 2.0, {"b": "2", "a": "1"})
        b = Point.make(1.0, 2.0, {"a": "1", "b": "2"})
        assert a == b

    def test_tag_lookup(self):
        point = Point.make(0.0, 1.0, {"pod_name": "p"})
        assert point.tag("pod_name") == "p"
        assert point.tag("missing") is None

    def test_tag_dict(self):
        point = Point.make(0.0, 1.0, {"x": "y"})
        assert point.tag_dict == {"x": "y"}


class TestWritesAndScans:
    def test_scan_window_inclusive(self, db):
        for t in (1.0, 2.0, 3.0, 4.0):
            db.write("m", value=t, time=t)
        values = [p.value for p in db.scan("m", start=2.0, end=3.0)]
        assert values == [2.0, 3.0]

    def test_scan_unknown_measurement_empty(self, db):
        assert db.scan("ghost") == []

    def test_out_of_order_writes_are_sorted(self, db):
        db.write("m", value=2.0, time=2.0)
        db.write("m", value=1.0, time=1.0)
        times = [p.time for p in db.scan("m")]
        assert times == [1.0, 2.0]

    def test_empty_measurement_name_rejected(self, db):
        with pytest.raises(MonitoringError):
            db.write("", value=1.0, time=0.0)

    def test_count_and_len(self, db):
        db.write("a", value=1.0, time=0.0)
        db.write("b", value=1.0, time=0.0)
        db.write("b", value=2.0, time=1.0)
        assert db.count("a") == 1
        assert db.count("b") == 2
        assert len(db) == 3

    def test_measurements_listing(self, db):
        db.write("b", value=1.0, time=0.0)
        db.write("a", value=1.0, time=0.0)
        assert db.measurements() == ["a", "b"]

    def test_write_points_bulk(self, db):
        db.write_points(
            "m", [Point.make(t, t) for t in (3.0, 1.0, 2.0)]
        )
        assert [p.time for p in db.scan("m")] == [1.0, 2.0, 3.0]


class TestLatest:
    def test_latest_overall(self, db):
        db.write("m", value=1.0, time=1.0, tags={"pod_name": "a"})
        db.write("m", value=2.0, time=2.0, tags={"pod_name": "b"})
        assert db.latest("m").value == 2.0

    def test_latest_with_tag_filter(self, db):
        db.write("m", value=1.0, time=1.0, tags={"pod_name": "a"})
        db.write("m", value=2.0, time=2.0, tags={"pod_name": "b"})
        assert db.latest("m", tags={"pod_name": "a"}).value == 1.0

    def test_latest_no_match(self, db):
        assert db.latest("m") is None


class TestRetention:
    def test_vacuum_drops_old_points(self):
        db = TimeSeriesDatabase(retention_seconds=10.0)
        db.write("m", value=1.0, time=0.0)
        db.write("m", value=2.0, time=100.0)
        removed = db.vacuum(now=100.0)
        assert removed == 1
        assert [p.value for p in db.scan("m")] == [2.0]

    def test_vacuum_without_policy_is_noop(self, db):
        db.write("m", value=1.0, time=0.0)
        assert db.vacuum(now=1e9) == 0
        assert db.count("m") == 1

    def test_bad_retention_rejected(self):
        with pytest.raises(MonitoringError):
            TimeSeriesDatabase(retention_seconds=0)

    def test_opportunistic_vacuum_on_writes(self):
        db = TimeSeriesDatabase(retention_seconds=5.0)
        for i in range(600):
            db.write("m", value=float(i), time=float(i))
        # Old points should have been vacuumed along the way.
        assert db.count("m") < 600

    def test_drop_measurement(self, db):
        db.write("m", value=1.0, time=0.0)
        db.drop_measurement("m")
        assert db.scan("m") == []
