"""Workload materialisation: stressors and malicious containers."""

import pytest

from repro.cluster.topology import paper_cluster
from repro.errors import TraceError
from repro.trace.borg import synthetic_scaled_trace
from repro.units import mib, pages
from repro.workload.malicious import MaliciousConfig, malicious_submissions
from repro.workload.stress import (
    EpcStressor,
    VmStressor,
    materialize_trace,
)


@pytest.fixture(scope="module")
def trace():
    return synthetic_scaled_trace(seed=3, n_jobs=100, overallocators=10)


class TestStressors:
    def test_vm_stressor_profile(self):
        profile = VmStressor(target_bytes=mib(100)).profile(30.0)
        assert profile.memory_bytes == mib(100)
        assert profile.epc_pages == 0
        assert not profile.uses_sgx

    def test_epc_stressor_profile(self):
        profile = EpcStressor(target_bytes=mib(10)).profile(30.0)
        assert profile.epc_pages == pages(mib(10))
        assert profile.memory_bytes == 0
        assert profile.uses_sgx


class TestMaterialization:
    def test_sgx_fraction_exact_count(self, trace):
        plans = materialize_trace(trace, sgx_fraction=0.25, seed=0)
        assert sum(1 for p in plans if p.is_sgx) == 25

    def test_all_standard(self, trace):
        plans = materialize_trace(trace, sgx_fraction=0.0, seed=0)
        assert not any(p.is_sgx for p in plans)
        assert all(
            p.spec.resources.requests.epc_pages == 0 for p in plans
        )

    def test_all_sgx(self, trace):
        plans = materialize_trace(trace, sgx_fraction=1.0, seed=0)
        assert all(p.is_sgx for p in plans)
        assert all(p.spec.resources.requests.memory_bytes == 0 for p in plans)

    def test_multipliers_applied(self, trace):
        plans = materialize_trace(trace, sgx_fraction=1.0, seed=0)
        job = trace[0]
        plan = next(p for p in plans if p.job_id == job.job_id)
        expected = pages(int(job.assigned_memory * mib(93.5)))
        assert plan.spec.resources.requests.epc_pages == expected

    def test_actual_usage_from_max_memory(self, trace):
        plans = materialize_trace(trace, sgx_fraction=0.0, seed=0)
        job = trace[0]
        plan = next(p for p in plans if p.job_id == job.job_id)
        assert plan.spec.workload.memory_bytes == int(
            job.max_memory * 32 * 2**30
        )

    def test_submit_times_preserved(self, trace):
        plans = materialize_trace(trace, sgx_fraction=0.5, seed=0)
        assert [p.submit_time for p in plans] == [
            j.submit_time for j in trace
        ]

    def test_deterministic_designation(self, trace):
        a = materialize_trace(trace, sgx_fraction=0.5, seed=9)
        b = materialize_trace(trace, sgx_fraction=0.5, seed=9)
        assert [p.is_sgx for p in a] == [p.is_sgx for p in b]

    def test_scheduler_name_propagates(self, trace):
        plans = materialize_trace(
            trace, sgx_fraction=0.0, seed=0, scheduler_name="x"
        )
        assert all(p.spec.scheduler_name == "x" for p in plans)

    def test_bad_fraction_rejected(self, trace):
        with pytest.raises(TraceError):
            materialize_trace(trace, sgx_fraction=1.5)


class TestMalicious:
    def test_one_pod_per_sgx_node(self):
        cluster = paper_cluster()
        plans = malicious_submissions(cluster, MaliciousConfig())
        assert len(plans) == len(cluster.sgx_nodes)

    def test_declares_one_page_uses_half_epc(self):
        cluster = paper_cluster()
        (first, _) = malicious_submissions(
            cluster, MaliciousConfig(epc_occupancy=0.5)
        )
        assert first.spec.resources.requests.epc_pages == 1
        assert first.spec.workload.epc_pages == 23_936 // 2

    def test_occupancy_validated(self):
        with pytest.raises(TraceError):
            MaliciousConfig(epc_occupancy=0.0)
        with pytest.raises(TraceError):
            MaliciousConfig(declared_pages=0)

    def test_labelled_malicious(self):
        plans = malicious_submissions(paper_cluster(), MaliciousConfig())
        assert all(
            p.spec.labels["origin"] == "malicious" for p in plans
        )
