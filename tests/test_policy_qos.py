"""Priority classes and QoS derivation: the policy layer's vocabulary."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.errors import PolicyError
from repro.orchestrator.api import PodSpec, ResourceRequirements
from repro.orchestrator.pod import Pod
from repro.policy import (
    DEFAULT_PRIORITY_CLASSES,
    PriorityClass,
    QosClass,
    is_evictable_by,
    priority_class_map,
    qos_of,
    resolve_priority,
)
from repro.units import gib, mib


def pod(name, priority=0, epc=0, mem=0, limits=None, submitted_at=0.0):
    requests = ResourceVector(memory_bytes=mem, epc_pages=epc)
    spec = PodSpec(
        name=name,
        resources=ResourceRequirements(requests=requests, limits=limits),
        priority=priority,
    )
    return Pod(spec, submitted_at=submitted_at)


class TestPriorityClasses:
    def test_default_catalogue_resolves(self):
        classes = priority_class_map()
        for cls in DEFAULT_PRIORITY_CLASSES:
            assert classes[cls.name] == cls.value
        assert classes["best-effort"] == 0
        assert classes["latency-critical"] == 100

    def test_extra_classes_overlay_defaults(self):
        classes = priority_class_map({"gold": 500, "batch": 20})
        assert classes["gold"] == 500
        assert classes["batch"] == 20  # redefined
        assert classes["best-effort"] == 0  # untouched

    def test_resolve_accepts_ints_and_names(self):
        assert resolve_priority(42) == 42
        assert resolve_priority("latency-critical") == 100
        assert resolve_priority("gold", {"gold": 7}) == 7

    def test_resolve_unknown_name_lists_known(self):
        with pytest.raises(PolicyError, match="best-effort"):
            resolve_priority("platinum")

    def test_invalid_class_rejected(self):
        with pytest.raises(PolicyError):
            PriorityClass("", 1)
        with pytest.raises(PolicyError):
            PriorityClass("x", "high")  # type: ignore[arg-type]
        with pytest.raises(PolicyError):
            resolve_priority(True)  # type: ignore[arg-type]

    def test_pod_spec_rejects_non_int_priority(self):
        from repro.errors import PodSpecError

        with pytest.raises(PodSpecError):
            PodSpec(name="p", priority="high")  # type: ignore[arg-type]


class TestQosDerivation:
    def test_no_requests_is_best_effort(self):
        assert qos_of(ResourceRequirements()) is QosClass.BEST_EFFORT

    def test_requests_without_limits_is_burstable(self):
        # The trace pods' shape: one declared number, stored as
        # requests only.  Defaulted limits do not buy guaranteed QoS.
        resources = ResourceRequirements(
            requests=ResourceVector(memory_bytes=gib(1))
        )
        assert qos_of(resources) is QosClass.BURSTABLE
        assert resources.effective_limits == resources.requests

    def test_explicit_equal_limits_is_guaranteed(self):
        requests = ResourceVector(epc_pages=2560)
        resources = ResourceRequirements(requests=requests, limits=requests)
        assert qos_of(resources) is QosClass.GUARANTEED

    def test_looser_limits_is_burstable(self):
        resources = ResourceRequirements(
            requests=ResourceVector(memory_bytes=mib(512)),
            limits=ResourceVector(memory_bytes=gib(1)),
        )
        assert qos_of(resources) is QosClass.BURSTABLE

    def test_evictable_tiers(self):
        assert not QosClass.GUARANTEED.evictable
        assert QosClass.BURSTABLE.evictable
        assert QosClass.BEST_EFFORT.evictable

    def test_pod_qos_property(self):
        assert pod("p", mem=gib(1)).qos_class is QosClass.BURSTABLE


class TestEvictability:
    def test_lower_priority_burstable_running_is_evictable(self):
        victim = pod("victim", priority=0, mem=gib(1))
        victim.mark_bound("node", 1.0)
        victim.mark_running(2.0)
        preemptor = pod("vip", priority=100, mem=gib(1))
        assert is_evictable_by(victim, preemptor)

    def test_equal_priority_never_evicts(self):
        victim = pod("victim", priority=100, mem=gib(1))
        victim.mark_bound("node", 1.0)
        preemptor = pod("vip", priority=100, mem=gib(1))
        assert not is_evictable_by(victim, preemptor)

    def test_guaranteed_victim_protected(self):
        requests = ResourceVector(memory_bytes=gib(1))
        victim = pod("victim", priority=0, mem=gib(1), limits=requests)
        victim.mark_bound("node", 1.0)
        preemptor = pod("vip", priority=100)
        assert victim.qos_class is QosClass.GUARANTEED
        assert not is_evictable_by(victim, preemptor)

    def test_pending_and_terminal_pods_are_not_victims(self):
        pending = pod("pending", priority=0, mem=gib(1))
        preemptor = pod("vip", priority=100)
        assert not is_evictable_by(pending, preemptor)
        done = pod("done", priority=0, mem=gib(1))
        done.mark_failed(1.0, "killed")
        assert not is_evictable_by(done, preemptor)
