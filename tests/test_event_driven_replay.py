"""Event-driven replay: bit-for-bit equivalence with the periodic oracle.

The tentpole claim of the trigger subsystem: firing scheduling passes on
cluster events (with clean wake-ups skipped) reproduces the periodic
replay exactly — same pod phases, same bindings, same timestamps, same
makespan and turnaround distribution — while executing far fewer passes.
"""

import pytest

from repro.errors import EpcExhaustedError
from repro.orchestrator.api import PodPhase
from repro.sgx.migration import MigrationManager
from repro.simulation.events import EventKind
from repro.simulation.runner import ReplayConfig, replay_trace
from repro.trace.borg import synthetic_scaled_trace
from repro.units import mib


@pytest.fixture(scope="module")
def small_trace():
    return synthetic_scaled_trace(seed=7, n_jobs=40, overallocators=4)


@pytest.fixture(scope="module")
def saturated_trace():
    # Burst submissions: the queue stays backed up for a long stretch,
    # exercising the fingerprint-based (state-unchanged) skip path.
    return synthetic_scaled_trace(
        seed=7, n_jobs=60, overallocators=6, window_seconds=60.0
    )


def pod_signature(result):
    return [
        (
            pod.name,
            pod.phase.value,
            pod.submitted_at,
            pod.bound_at,
            pod.started_at,
            pod.finished_at,
            pod.node_name,
        )
        for pod in result.metrics.pods
    ]


EQUIVALENCE_CONFIGS = [
    dict(sgx_fraction=0.5, seed=1),
    dict(sgx_fraction=1.0, seed=1),
    dict(
        sgx_fraction=1.0,
        seed=1,
        enforce_epc_limits=True,
        epc_allow_overcommit=False,
    ),
    dict(sgx_fraction=1.0, seed=1, rebalance_period=15.0),
    dict(sgx_fraction=1.0, seed=1, node_failures=((600.0, "sgx-worker-0"),)),
    dict(sgx_fraction=1.0, seed=2, epc_allow_overcommit=False),
    dict(
        sgx_fraction=1.0,
        seed=1,
        epc_allow_overcommit=False,
        requeue_backoff_seconds=30.0,
    ),
]


class TestEquivalence:
    @pytest.mark.parametrize(
        "kwargs", EQUIVALENCE_CONFIGS,
        ids=lambda kw: ",".join(f"{k}={v}" for k, v in kw.items()),
    )
    def test_bit_for_bit_with_fewer_passes(self, small_trace, kwargs):
        periodic = replay_trace(
            small_trace, ReplayConfig(scheduler="binpack", **kwargs)
        )
        event = replay_trace(
            small_trace,
            ReplayConfig(scheduler="binpack", event_driven=True, **kwargs),
        )
        assert pod_signature(event) == pod_signature(periodic)
        assert (
            event.metrics.makespan_seconds
            == periodic.metrics.makespan_seconds
        )
        assert sorted(event.metrics.turnaround_times()) == sorted(
            periodic.metrics.turnaround_times()
        )
        assert event.metrics.queue_series == periodic.metrics.queue_series
        assert event.passes_executed < periodic.passes_executed
        assert event.passes_skipped > 0
        assert (
            event.passes_executed + event.passes_skipped
            == periodic.passes_executed
        )

    def test_saturated_queue_equivalence(self, saturated_trace):
        kwargs = dict(sgx_fraction=1.0, seed=1, epc_total_bytes=mib(64))
        periodic = replay_trace(
            saturated_trace, ReplayConfig(scheduler="binpack", **kwargs)
        )
        event = replay_trace(
            saturated_trace,
            ReplayConfig(scheduler="binpack", event_driven=True, **kwargs),
        )
        assert pod_signature(event) == pod_signature(periodic)
        assert event.passes_executed < periodic.passes_executed
        # The backlog keeps the queue non-empty for a long stretch;
        # skips there come from the state-unchanged proof, not just
        # queue emptiness.
        assert periodic.metrics.max_waiting_seconds() > 100.0

    def test_spread_scheduler_equivalence(self, small_trace):
        kwargs = dict(scheduler="spread", sgx_fraction=0.5, seed=4)
        periodic = replay_trace(small_trace, ReplayConfig(**kwargs))
        event = replay_trace(
            small_trace, ReplayConfig(event_driven=True, **kwargs)
        )
        assert pod_signature(event) == pod_signature(periodic)

    def test_periodic_mode_logs_no_skips(self, small_trace):
        result = replay_trace(
            small_trace,
            ReplayConfig(scheduler="binpack", sgx_fraction=0.5, seed=1),
        )
        assert result.passes_skipped == 0
        assert result.log.of_kind(EventKind.PASS_SKIPPED) == []

    def test_event_mode_is_deterministic(self, small_trace):
        config = ReplayConfig(
            scheduler="binpack",
            sgx_fraction=1.0,
            seed=5,
            event_driven=True,
        )
        a = replay_trace(small_trace, config)
        b = replay_trace(small_trace, config)
        assert pod_signature(a) == pod_signature(b)
        assert a.passes_executed == b.passes_executed


class TestTriggerAccounting:
    def test_events_coalesce_into_fewer_passes(self, small_trace):
        result = replay_trace(
            small_trace,
            ReplayConfig(
                scheduler="binpack",
                sgx_fraction=1.0,
                seed=1,
                event_driven=True,
            ),
        )
        trigger = result.orchestrator.trigger
        # 40 submissions + 40 completions at minimum.
        assert trigger.events_published >= 80
        assert result.passes_executed < trigger.events_published
        assert trigger.events_coalesced > 0


class TestFailedMigrationInReplay:
    def test_restore_outage_loses_no_work(
        self, monkeypatch, saturated_trace
    ):
        """Regression: a failed rebalancer migration left the replay
        holding a running-job entry and a live finish event for a pod
        that no longer existed — the finish fired and tried to complete
        a failed pod.  With the fix, the job entry is purged and the
        resubmitted spec completes on a later attempt."""
        real_restore = MigrationManager.restore
        failures = {"left": 2}

        def flaky_restore(self, driver, pid, checkpoint, key, aesm):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise EpcExhaustedError(
                    checkpoint.size_bytes // 4096, 0
                )
            return real_restore(self, driver, pid, checkpoint, key, aesm)

        monkeypatch.setattr(MigrationManager, "restore", flaky_restore)
        result = replay_trace(
            saturated_trace,
            ReplayConfig(
                scheduler="binpack",
                sgx_fraction=1.0,
                seed=1,
                rebalance_period=15.0,
            ),
        )
        migration_failures = result.log.of_kind(EventKind.MIGRATION_FAILED)
        assert migration_failures, "outage never exercised the fix"
        # Every workload name still completes (via the resubmission).
        completed = {p.name for p in result.metrics.succeeded}
        assert completed == {p.spec.name for p in result.metrics.pods}
        # The original pods of failed migrations ended FAILED, with a
        # successful twin of the same name.
        for event in migration_failures:
            twins = [
                p
                for p in result.metrics.pods
                if p.name == event.pod_name
            ]
            assert any(p.phase is PodPhase.FAILED for p in twins)
            assert any(p.phase is PodPhase.SUCCEEDED for p in twins)
