"""Feasibility filter and node-preservation rule."""

from repro.cluster.resources import ResourceVector
from repro.orchestrator.api import PodSpec, ResourceRequirements
from repro.orchestrator.pod import Pod
from repro.scheduler.base import NodeView
from repro.scheduler.filtering import (
    FilterReason,
    can_ever_fit,
    feasible_nodes,
    prefer_non_sgx,
)
from repro.units import gib


def make_pod(epc=0, mem=0) -> Pod:
    spec = PodSpec(
        name="p",
        resources=ResourceRequirements(
            requests=ResourceVector(memory_bytes=mem, epc_pages=epc)
        ),
    )
    return Pod(spec, submitted_at=0.0)


def make_view(name, sgx, mem_cap=gib(64), epc_cap=0, mem_used=0, epc_used=0):
    return NodeView(
        name=name,
        sgx_capable=sgx,
        capacity=ResourceVector(
            cpu_millicores=8000, memory_bytes=mem_cap, epc_pages=epc_cap
        ),
        used=ResourceVector(memory_bytes=mem_used, epc_pages=epc_used),
    )


STD = make_view("std", sgx=False)
SGX = make_view("sgx", sgx=True, mem_cap=gib(8), epc_cap=23_936)


class TestFeasibility:
    def test_sgx_pod_filtered_from_standard_node(self):
        candidates, rejections = feasible_nodes(make_pod(epc=10), [STD, SGX])
        assert [v.name for v in candidates] == ["sgx"]
        assert rejections == {"std": FilterReason.HARDWARE_INCOMPATIBLE}

    def test_saturating_request_filtered(self):
        view = make_view("busy", sgx=True, epc_cap=100, epc_used=95)
        candidates, rejections = feasible_nodes(make_pod(epc=10), [view])
        assert candidates == []
        assert rejections == {"busy": FilterReason.WOULD_SATURATE}

    def test_exact_fit_is_feasible(self):
        view = make_view("node", sgx=True, epc_cap=100, epc_used=90)
        candidates, _ = feasible_nodes(make_pod(epc=10), [view])
        assert [v.name for v in candidates] == ["node"]

    def test_standard_pod_sees_both_kinds(self):
        candidates, _ = feasible_nodes(make_pod(mem=gib(1)), [STD, SGX])
        assert [v.name for v in candidates] == ["std", "sgx"]


class TestCanEverFit:
    def test_fits_capacity_even_if_busy(self):
        view = make_view("busy", sgx=True, epc_cap=100, epc_used=100)
        assert can_ever_fit(make_pod(epc=50), [view])

    def test_never_fits_any_node(self):
        assert not can_ever_fit(make_pod(epc=24_000), [STD, SGX])

    def test_sgx_pod_ignores_standard_capacity(self):
        big_std = make_view("std", sgx=False, mem_cap=gib(512))
        assert not can_ever_fit(make_pod(epc=10), [big_std])


class TestPreferNonSgx:
    def test_standard_pod_prefers_standard_nodes(self):
        pod = make_pod(mem=gib(1))
        preferred = prefer_non_sgx(pod, [SGX, STD])
        assert [v.name for v in preferred] == ["std"]

    def test_standard_pod_falls_back_to_sgx(self):
        pod = make_pod(mem=gib(1))
        preferred = prefer_non_sgx(pod, [SGX])
        assert [v.name for v in preferred] == ["sgx"]

    def test_sgx_pod_unaffected(self):
        pod = make_pod(epc=10)
        preferred = prefer_non_sgx(pod, [SGX])
        assert [v.name for v in preferred] == ["sgx"]
