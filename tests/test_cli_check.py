"""The ``repro check`` CLI subcommand: exit codes and output shapes."""

import json
import textwrap

import pytest

from repro.cli import main


def write_tree(root, files):
    for relpath, text in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))


@pytest.fixture
def dirty_tree(tmp_path):
    write_tree(tmp_path, {
        "scheduler/core.py": """
            for node in {"a", "b"}:
                print(node)
        """,
    })
    return tmp_path


@pytest.fixture
def clean_tree(tmp_path):
    write_tree(tmp_path, {"scheduler/core.py": "x = 1\n"})
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_0(self, clean_tree, capsys):
        assert main(["check", "--root", str(clean_tree)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_1(self, dirty_tree, capsys):
        assert main(["check", "--root", str(dirty_tree)]) == 1
        out = capsys.readouterr().out
        assert "DET003" in out
        assert "scheduler/core.py:2" in out

    def test_unknown_rule_exits_2(self, clean_tree):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "check", "--root", str(clean_tree), "--rules", "NOPE",
            ])
        assert excinfo.value.code == 2

    def test_missing_root_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", "--root", str(tmp_path / "nowhere")])
        assert excinfo.value.code == 2

    def test_missing_baseline_exits_2(self, clean_tree, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "check", "--root", str(clean_tree),
                "--baseline", str(tmp_path / "absent.json"),
            ])
        assert excinfo.value.code == 2

    def test_bad_format_exits_2(self, clean_tree):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "check", "--root", str(clean_tree),
                "--format", "xml",
            ])
        assert excinfo.value.code == 2


class TestJsonDocument:
    def test_schema_and_fields(self, dirty_tree, capsys):
        assert main([
            "check", "--root", str(dirty_tree), "--format", "json",
        ]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.check/v1"
        assert document["count"] == 1
        assert document["counts_by_rule"] == {"DET003": 1}
        (finding,) = document["findings"]
        assert finding["rule"] == "DET003"
        assert finding["path"] == "scheduler/core.py"
        assert finding["line"] == 2
        assert finding["message"]
        assert finding["hint"]

    def test_rules_filter(self, dirty_tree, capsys):
        assert main([
            "check", "--root", str(dirty_tree),
            "--rules", "DET001,DET002", "--format", "json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["rules_run"] == ["DET001", "DET002"]


class TestBaselineWorkflow:
    def test_write_then_gate(self, dirty_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([
            "check", "--root", str(dirty_tree),
            "--write-baseline", str(baseline),
        ]) == 0
        capsys.readouterr()
        assert main([
            "check", "--root", str(dirty_tree),
            "--baseline", str(baseline),
        ]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_stale_entry_fails_the_gate(self, clean_tree, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "schema": "repro.check/v1",
            "findings": [{
                "path": "scheduler/core.py",
                "rule": "DET003",
                "message": "long gone",
            }],
        }))
        assert main([
            "check", "--root", str(clean_tree),
            "--baseline", str(baseline),
        ]) == 1


class TestListIntegration:
    def test_check_in_list_output(self, capsys):
        assert main(["list"]) == 0
        assert "check" in capsys.readouterr().out
