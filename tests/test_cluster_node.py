"""Node model: capacities, process lifecycle, measured usage."""

import pytest

from repro.cluster.node import Node, NodeSpec
from repro.errors import NodeError
from repro.units import gib, mib, pages


class TestSpecs:
    def test_standard_spec_matches_paper(self):
        spec = NodeSpec.standard("w0")
        assert spec.memory_bytes == gib(64)
        assert spec.cpus == 8
        assert not spec.sgx_capable

    def test_sgx_spec_matches_paper(self):
        spec = NodeSpec.sgx("s0")
        assert spec.memory_bytes == gib(8)
        assert spec.sgx_capable
        assert spec.epc_total_bytes == mib(128)


class TestCapacity:
    def test_standard_node_has_no_epc(self, standard_node):
        assert standard_node.capacity.epc_pages == 0
        assert not standard_node.sgx_capable
        assert standard_node.driver is None

    def test_sgx_node_advertises_usable_pages(self, sgx_node):
        assert sgx_node.capacity.epc_pages == 23_936
        assert sgx_node.sgx_capable

    def test_sgx_node_epc_sweep(self):
        node = Node(NodeSpec.sgx("s", epc_total_bytes=mib(256)))
        assert node.capacity.epc_pages == 2 * 23_936

    def test_cpu_capacity_in_millicores(self, sgx_node):
        assert sgx_node.capacity.cpu_millicores == 8000


class TestProcesses:
    def test_spawn_requires_cgroup(self, sgx_node):
        with pytest.raises(NodeError):
            sgx_node.spawn_process("/missing", memory_bytes=0)

    def test_spawn_registers_with_driver(self, sgx_node):
        path = sgx_node.cgroups.create_pod_cgroup("p1")
        pid = sgx_node.spawn_process(path, memory_bytes=mib(1))
        enclave = sgx_node.driver.create_enclave(pid, size_bytes=mib(2))
        assert enclave.owner == path

    def test_memory_accounting(self, standard_node):
        path = standard_node.cgroups.create_pod_cgroup("p1")
        pid = standard_node.spawn_process(path, memory_bytes=gib(1))
        assert standard_node.used_memory_bytes() == gib(1)
        assert standard_node.cgroup_memory_bytes(path) == gib(1)
        standard_node.set_process_memory(pid, gib(2))
        assert standard_node.used_memory_bytes() == gib(2)

    def test_negative_memory_rejected(self, standard_node):
        path = standard_node.cgroups.create_pod_cgroup("p1")
        with pytest.raises(NodeError):
            standard_node.spawn_process(path, memory_bytes=-1)

    def test_set_memory_unknown_pid_rejected(self, standard_node):
        with pytest.raises(NodeError):
            standard_node.set_process_memory(999, 0)

    def test_kill_releases_enclaves(self, sgx_node):
        path = sgx_node.cgroups.create_pod_cgroup("p1")
        pid = sgx_node.spawn_process(path)
        sgx_node.driver.create_enclave(pid, size_bytes=mib(4))
        assert sgx_node.used_epc_pages() == pages(mib(4))
        sgx_node.kill_process(pid)
        assert sgx_node.used_epc_pages() == 0
        assert sgx_node.cgroups.get(path).pids == set()

    def test_kill_unknown_pid_is_noop(self, sgx_node):
        sgx_node.kill_process(424242)

    def test_free_epc_pages_non_sgx_is_zero(self, standard_node):
        assert standard_node.free_epc_pages() == 0
