"""The observability subsystem's equivalence gate.

Three claims, the first two hypothesis-checked on random bursty
traces:

* **observed == unobserved** — turning the decision ledger on changes
  nothing: whole-replay signatures are bit-for-bit identical with and
  without a ledger, across the periodic, event-driven, indexed and
  sharded (cells) engines, with preemption on and off.
* **cells=1 == flat, decision for decision** — the sharded runner at
  one cell emits the *identical* event stream the flat oracle emits
  (:func:`repro.obs.diff.diff_ledgers` reports zero divergences), not
  just the same outcomes.
* **the file format is deterministic** — replaying one scenario twice
  produces byte-identical ledgers, ordered by sim time with a dense
  sequence counter, under the declared ``repro.ledger/v1`` header.
"""

import json
import os
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import ObserveConfig, Scenario
from repro.errors import SimulationError
from repro.obs import (
    LEDGER_EVENT_KINDS,
    LEDGER_SCHEMA,
    NULL_LEDGER,
    DecisionLedger,
    diff_ledgers,
    load_ledger,
)
from repro.trace.borg import synthetic_scaled_trace
from repro.units import mib

replay_settings = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def bursty_trace(trace_seed, n_jobs):
    return synthetic_scaled_trace(
        seed=trace_seed,
        n_jobs=n_jobs,
        overallocators=max(1, n_jobs // 10),
        window_seconds=120.0,
    )


def record(scenario, directory, name):
    """Run *scenario* with the ledger on; return (path, result)."""
    path = os.path.join(directory, name + ".jsonl")
    result = scenario.with_(
        observe=ObserveConfig(ledger_path=path)
    ).run()
    assert result.ledger_path == path
    return path, result


@given(
    trace_seed=st.integers(min_value=0, max_value=1_000),
    seed=st.integers(min_value=0, max_value=1_000),
    n_jobs=st.integers(min_value=10, max_value=30),
    sgx_fraction=st.sampled_from([0.5, 1.0]),
    engine=st.sampled_from(
        ["periodic", "event", "indexed", "cells", "preempting"]
    ),
)
@replay_settings
def test_observation_never_changes_the_run(
    trace_seed, seed, n_jobs, sgx_fraction, engine
):
    toggles = {
        "periodic": {},
        "event": {"event_driven": True},
        "indexed": {"indexed_scheduling": True},
        "cells": {"cells": 2},
        "preempting": {
            "epc_total_bytes": mib(64),
            "workload": "priority-mix",
            "workload_options": {
                "high_fraction": 0.25,
                "high_priority": "latency-critical",
            },
            "preemption_policy": "cheapest-victims",
        },
    }[engine]
    scenario = Scenario(
        trace=bursty_trace(trace_seed, n_jobs),
        sgx_fraction=sgx_fraction,
        seed=seed,
        **toggles,
    )
    plain = scenario.run()
    with tempfile.TemporaryDirectory() as directory:
        _, observed = record(scenario, directory, "run")
    assert observed.signature() == plain.signature()
    assert plain.ledger_path is None


@given(
    trace_seed=st.integers(min_value=0, max_value=1_000),
    seed=st.integers(min_value=0, max_value=1_000),
    n_jobs=st.integers(min_value=10, max_value=30),
)
@replay_settings
def test_cells1_ledger_is_decision_for_decision_the_oracle(
    trace_seed, seed, n_jobs
):
    scenario = Scenario(
        trace=bursty_trace(trace_seed, n_jobs),
        sgx_fraction=0.5,
        seed=seed,
    )
    with tempfile.TemporaryDirectory() as directory:
        flat_path, _ = record(scenario, directory, "flat")
        cells_path, _ = record(
            scenario.with_(cells=1), directory, "cells1"
        )
        diff = diff_ledgers(
            load_ledger(flat_path), load_ledger(cells_path)
        )
    # The headers differ (the cells knob); the decisions must not.
    assert diff.identical, diff.first_divergence
    assert diff.diffs == 0
    assert diff.only_left == 0 and diff.only_right == 0
    assert ("config.cells", None, 1) in diff.header_diffs


def test_repeat_runs_write_byte_identical_ledgers(tmp_path):
    scenario = Scenario(
        trace="borg-synth:seed=7,jobs=40", sgx_fraction=0.5, seed=3
    )
    paths = []
    for name in ("a", "b"):
        path, _ = record(scenario, str(tmp_path), name)
        paths.append(path)
    first, second = (open(p, "rb").read() for p in paths)
    assert first == second


def test_ledger_header_and_ordering(tmp_path):
    scenario = Scenario(
        trace="borg-synth:seed=7,jobs=40", sgx_fraction=0.5, seed=3
    )
    path, result = record(scenario, str(tmp_path), "run")
    ledger = load_ledger(path)
    assert ledger.header["schema"] == LEDGER_SCHEMA
    assert ledger.header["seed"] == 3
    assert ledger.header["kinds"] == sorted(LEDGER_EVENT_KINDS)
    assert ledger.header["config"]["sgx_fraction"] == 0.5
    # Sim-time ordered, dense sequence numbers, declared kinds only.
    times = [event["t"] for event in ledger.events]
    assert times == sorted(times)
    assert [event["i"] for event in ledger.events] == list(
        range(len(ledger.events))
    )
    kinds = {event["kind"] for event in ledger.events}
    assert kinds <= set(LEDGER_EVENT_KINDS)
    # The run_end summary record agrees with the result counters.
    last = ledger.events[-1]
    assert last["kind"] == "run_end"
    assert last["passes"] == result.passes_executed
    assert last["makespan_s"] == result.metrics.makespan_seconds
    # Every payload value is a JSON primitive (no serialised objects).
    for event in ledger.events:
        for value in event.values():
            assert value is None or isinstance(
                value, (str, int, float, bool)
            )


def test_event_driven_ledger_records_skips(tmp_path):
    scenario = Scenario(
        trace="borg-synth:seed=7,jobs=40", sgx_fraction=0.5, seed=3
    )
    path, result = record(
        scenario.with_(event_driven=True), str(tmp_path), "event"
    )
    skips = [
        event
        for event in load_ledger(path).events
        if event["kind"] == "pass_skipped"
    ]
    assert len(skips) == result.passes_skipped > 0


def test_emit_validates_against_the_schema_table(tmp_path):
    ledger = DecisionLedger(str(tmp_path / "x.jsonl"))
    ledger.open({"schema": LEDGER_SCHEMA})
    with pytest.raises(SimulationError, match="not declared"):
        ledger.emit(0.0, "teleportation")
    with pytest.raises(SimulationError, match="payload mismatch"):
        ledger.emit(0.0, "deferral", pod="p", mood="gloomy")
    with pytest.raises(SimulationError, match="payload mismatch"):
        ledger.emit(0.0, "deferral", pod="p")  # missing: reason
    ledger.emit(0.0, "deferral", pod="p", reason="epc")
    ledger.close()
    assert ledger.events_emitted == 1


def test_observe_config_validates():
    with pytest.raises(SimulationError, match="buffer_records"):
        ObserveConfig(ledger_path="x.jsonl", buffer_records=0)
    assert not ObserveConfig().active
    assert ObserveConfig(trace_path="t.json").active


def test_null_ledger_is_inert():
    assert NULL_LEDGER.enabled is False
    assert NULL_LEDGER.path is None
    # No-ops, no validation, no state: safe on every hot path.
    NULL_LEDGER.emit(0.0, "not-even-a-kind", anything="goes")
    NULL_LEDGER.close()
    assert NULL_LEDGER.events_emitted == 0


def test_load_ledger_rejects_garbage(tmp_path):
    missing = tmp_path / "absent.jsonl"
    with pytest.raises(SimulationError, match="cannot read"):
        load_ledger(str(missing))
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(SimulationError):
        load_ledger(str(empty))
    alien = tmp_path / "alien.jsonl"
    alien.write_text(json.dumps({"schema": "other/v9"}) + "\n")
    with pytest.raises(SimulationError, match="header"):
        load_ledger(str(alien))
