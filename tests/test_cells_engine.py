"""ShardedEngine vs the flat engine: the deterministic merge.

The sharded engine must fire events in *exactly* the order the flat
:class:`SimulationEngine` fires them — the ``cells=1`` oracle gate of
the replay rides on it, but the property holds for any cell count
because the sequence counter is shared.  The suite mirrors random
operation scripts onto both engines (events dealt round-robin across
cells on the sharded side) and asserts identical firing orders, then
covers the engine-local semantics: cancellation, the fused
``reschedule_in``, the ``run(until)`` boundary, and per-queue
compaction.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells.engine import GLOBAL_CELL, ShardedEngine
from repro.errors import SimulationError
from repro.simulation.engine import SimulationEngine


def record(log, tag):
    return lambda: log.append(tag)


class TestMergeEquivalence:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=40,
        ),
        cells=st.integers(min_value=1, max_value=5),
        cancel_every=st.integers(min_value=2, max_value=7),
    )
    @settings(max_examples=60, deadline=None)
    def test_firing_order_matches_flat_engine(
        self, delays, cells, cancel_every
    ):
        flat = SimulationEngine()
        sharded = ShardedEngine(cells=cells)
        flat_log, sharded_log = [], []
        flat_handles, sharded_handles = [], []
        for i, delay in enumerate(delays):
            flat_handles.append(
                flat.schedule_in(delay, record(flat_log, i))
            )
            sharded_handles.append(
                sharded.schedule_in(
                    delay, record(sharded_log, i), i % cells
                )
            )
        for i in range(0, len(delays), cancel_every):
            flat_handles[i].cancel()
            sharded_handles[i].cancel()
        flat.run()
        sharded.run()
        assert sharded_log == flat_log
        assert sharded.now == flat.now
        assert sharded.fired_events == flat.fired_events
        assert sharded.pending_events == flat.pending_events == 0

    @given(
        until=st.floats(min_value=0.0, max_value=50.0,
                        allow_nan=False, allow_infinity=False),
        cells=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_run_until_boundary_matches_flat_engine(self, until, cells):
        flat = SimulationEngine()
        sharded = ShardedEngine(cells=cells)
        flat_log, sharded_log = [], []
        for i, delay in enumerate([10.0, 20.0, 30.0, 40.0, 50.0]):
            flat.schedule_in(delay, record(flat_log, i))
            sharded.schedule_in(delay, record(sharded_log, i), i % cells)
        assert sharded.run(until=until) == flat.run(until=until)
        assert sharded_log == flat_log
        assert sharded.pending_events == flat.pending_events
        # The leftover events still fire, in the same order, on the
        # next unbounded run.
        flat.run()
        sharded.run()
        assert sharded_log == flat_log

    def test_same_time_ties_break_in_schedule_order(self):
        # Three cells, one shared timestamp: the shared sequence
        # counter keeps global FIFO across the queues.
        engine = ShardedEngine(cells=3)
        log = []
        for i in range(9):
            engine.schedule_at(5.0, record(log, i), i % 3)
        engine.run()
        assert log == list(range(9))

    def test_reschedule_in_is_cancel_plus_schedule(self):
        flat = SimulationEngine()
        sharded = ShardedEngine(cells=2)
        flat_log, sharded_log = [], []
        fh = flat.schedule_in(10.0, record(flat_log, "old"))
        sh = sharded.schedule_in(10.0, record(sharded_log, "old"), 0)
        flat.schedule_in(5.0, record(flat_log, "mid"))
        sharded.schedule_in(5.0, record(sharded_log, "mid"), 1)
        # Fused move, crossing cells on the sharded side.
        flat.reschedule_in(fh, 2.0, record(flat_log, "new"))
        sharded.reschedule_in(sh, 2.0, record(sharded_log, "new"), 1)
        flat.run()
        sharded.run()
        assert sharded_log == flat_log == ["new", "mid"]
        assert sharded.pending_events == 0

    def test_reschedule_none_handle_schedules_fresh(self):
        engine = ShardedEngine(cells=2)
        log = []
        engine.reschedule_in(None, 1.0, record(log, "a"), 1)
        assert engine.pending_events == 1
        engine.run()
        assert log == ["a"]


class TestEngineSemantics:
    def test_cell_count_below_one_rejected(self):
        with pytest.raises(SimulationError, match="cells must be >= 1"):
            ShardedEngine(cells=0)

    def test_unknown_cell_rejected(self):
        engine = ShardedEngine(cells=2)
        with pytest.raises(SimulationError, match="unknown cell"):
            engine.schedule_in(1.0, lambda: None, 2)
        with pytest.raises(SimulationError, match="unknown cell"):
            engine.schedule_at(1.0, lambda: None, -2)

    def test_default_cell_is_the_control_plane(self):
        engine = ShardedEngine(cells=3)
        engine.schedule_in(1.0, lambda: None)
        # queue_sizes lists the control plane first.
        assert engine.queue_sizes() == [1, 0, 0, 0]
        assert engine._queues[0].cell == GLOBAL_CELL

    def test_past_schedule_rejected(self):
        engine = ShardedEngine(cells=1)
        engine.schedule_in(5.0, lambda: None, 0)
        engine.run()
        with pytest.raises(SimulationError, match="in the past"):
            engine.schedule_at(1.0, lambda: None, 0)

    def test_negative_delay_rejected(self):
        engine = ShardedEngine(cells=1)
        with pytest.raises(SimulationError, match="negative delay"):
            engine.schedule_in(-1.0, lambda: None, 0)
        with pytest.raises(SimulationError, match="negative delay"):
            engine.reschedule_in(None, -1.0, lambda: None, 0)

    def test_step_fires_exactly_one_event(self):
        engine = ShardedEngine(cells=2)
        log = []
        engine.schedule_in(2.0, record(log, "b"), 1)
        engine.schedule_in(1.0, record(log, "a"), 0)
        assert engine.step() is True
        assert log == ["a"]
        assert engine.now == 1.0
        assert engine.step() is True
        assert engine.step() is False
        assert log == ["a", "b"]

    def test_cancel_is_idempotent_and_counted_once(self):
        engine = ShardedEngine(cells=1)
        handle = engine.schedule_in(1.0, lambda: None, 0)
        handle.cancel()
        handle.cancel()
        assert engine.pending_events == 0
        engine.run()
        assert engine.fired_events == 0

    def test_per_queue_compaction_drops_cancelled_entries(self):
        engine = ShardedEngine(cells=2)
        keep = [engine.schedule_in(float(i), lambda: None, 0)
                for i in range(40)]
        noise = [engine.schedule_in(100.0 + i, lambda: None, 1)
                 for i in range(40)]
        for handle in noise:
            handle.cancel()
        # Cell 1's heap compacted independently (once its cancelled
        # half dominated); cell 0 untouched at its full 40.
        assert engine.queue_sizes() == [0, 40, 0]
        assert len(engine._queues[2].heap) < 40
        assert len(engine._queues[1].heap) == 40
        assert engine.pending_events == 40
        del keep

    def test_max_events_guard_trips(self):
        engine = ShardedEngine(cells=1)

        def reschedule():
            engine.schedule_in(1.0, reschedule, 0)

        engine.schedule_in(1.0, reschedule, 0)
        with pytest.raises(SimulationError, match="runaway"):
            engine.run(max_events=100)

    def test_run_until_advances_clock_past_last_event(self):
        engine = ShardedEngine(cells=1)
        engine.schedule_in(3.0, lambda: None, 0)
        assert engine.run(until=10.0) == 10.0
        assert engine.now == 10.0
