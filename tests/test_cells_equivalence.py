"""The sharded replay's oracle gate: ``cells=1`` is the flat replay.

Hypothesis-checked on random bursty traces: a ``cells=1`` scenario —
which runs the *full* sharded machinery (sharded engine, cell router,
dispatcher) — produces a whole-run :meth:`RunResult.signature`
bit-for-bit identical to a scenario that never mentions cells, across
the periodic, event-driven and indexed engines and every partition
policy.  Multi-cell runs cannot match the oracle (passes interleave
differently) but must be deterministic and complete the workload.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Scenario
from repro.trace.borg import synthetic_scaled_trace

replay_settings = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def bursty_trace(trace_seed, n_jobs):
    """A short-window trace: the queue backs up, so routing matters."""
    return synthetic_scaled_trace(
        seed=trace_seed,
        n_jobs=n_jobs,
        overallocators=max(1, n_jobs // 10),
        window_seconds=120.0,
    )


@given(
    trace_seed=st.integers(min_value=0, max_value=1_000),
    seed=st.integers(min_value=0, max_value=1_000),
    n_jobs=st.integers(min_value=10, max_value=40),
    sgx_fraction=st.sampled_from([0.0, 0.5, 1.0]),
    policy=st.sampled_from(["balanced", "region", "capacity-class"]),
)
@replay_settings
def test_one_cell_is_bit_for_bit_the_oracle(
    trace_seed, seed, n_jobs, sgx_fraction, policy
):
    trace = bursty_trace(trace_seed, n_jobs)
    flat = Scenario(
        trace=trace, sgx_fraction=sgx_fraction, seed=seed
    )
    sharded = flat.with_(cells=1, cell_policy=policy)
    for toggle in (
        {},
        {"event_driven": True},
        {"indexed_scheduling": True},
        {"event_driven": True, "indexed_scheduling": True},
    ):
        oracle = flat.with_(**toggle).run()
        result = sharded.with_(**toggle).run()
        assert result.signature() == oracle.signature()
        assert result.cell_spillovers == 0


@given(
    trace_seed=st.integers(min_value=0, max_value=1_000),
    seed=st.integers(min_value=0, max_value=1_000),
    n_jobs=st.integers(min_value=10, max_value=40),
    cells=st.integers(min_value=2, max_value=4),
    policy=st.sampled_from(["balanced", "region", "capacity-class"]),
)
@replay_settings
def test_multi_cell_is_deterministic_and_completes(
    trace_seed, seed, n_jobs, cells, policy
):
    scenario = Scenario(
        trace=bursty_trace(trace_seed, n_jobs),
        sgx_fraction=0.5,
        seed=seed,
        cells=cells,
        cell_policy=policy,
        standard_workers=4,
        sgx_workers=4,
    )
    first = scenario.run()
    assert first.signature() == scenario.run().signature()
    metrics = first.metrics
    assert len(metrics.succeeded) == len(metrics.pods)
    assert not metrics.failed


@given(
    trace_seed=st.integers(min_value=0, max_value=500),
    seed=st.integers(min_value=0, max_value=500),
)
@replay_settings
def test_multi_cell_engine_toggles_are_deterministic(trace_seed, seed):
    base = Scenario(
        trace=bursty_trace(trace_seed, 25),
        sgx_fraction=0.5,
        seed=seed,
        cells=3,
        standard_workers=3,
        sgx_workers=3,
    )
    for toggle in (
        {"event_driven": True},
        {"indexed_scheduling": True},
    ):
        scenario = base.with_(**toggle)
        assert scenario.run().signature() == scenario.run().signature()
