"""Node add/remove: the paper's probe-follows-node behaviour (Sec. V-C)."""

import pytest

from repro.cluster.node import Node, NodeSpec
from repro.cluster.topology import paper_cluster
from repro.errors import OrchestrationError
from repro.orchestrator.api import PodPhase, make_pod_spec
from repro.orchestrator.controller import PROBE_DAEMONSET, Orchestrator
from repro.scheduler.binpack import BinpackScheduler
from repro.units import mib


@pytest.fixture
def orchestrator():
    return Orchestrator(paper_cluster())


def probe_nodes(orchestrator):
    return {
        p.node_name
        for p in orchestrator.daemonsets.payloads(PROBE_DAEMONSET)
    }


class TestAddNode:
    def test_new_sgx_node_gets_a_probe(self, orchestrator):
        orchestrator.add_node(Node(NodeSpec.sgx("sgx-worker-9")), now=0.0)
        assert "sgx-worker-9" in probe_nodes(orchestrator)

    def test_new_standard_node_gets_no_probe(self, orchestrator):
        orchestrator.add_node(Node(NodeSpec.standard("worker-9")), now=0.0)
        assert "worker-9" not in probe_nodes(orchestrator)

    def test_new_node_is_schedulable(self, orchestrator):
        # Fill both existing SGX nodes, then join a third: the pending
        # pod lands there on the next pass.
        for index in range(2):
            orchestrator.submit(
                make_pod_spec(
                    f"big-{index}",
                    duration_seconds=600.0,
                    declared_epc_bytes=mib(90),
                ),
                now=0.0,
            )
        late = orchestrator.submit(
            make_pod_spec(
                "late", duration_seconds=60.0, declared_epc_bytes=mib(50)
            ),
            now=0.0,
        )
        scheduler = BinpackScheduler()
        first = orchestrator.scheduling_pass(scheduler, now=1.0)
        assert late in first.deferred
        orchestrator.add_node(Node(NodeSpec.sgx("sgx-worker-9")), now=0.0)
        second = orchestrator.scheduling_pass(scheduler, now=6.0)
        assert any(p is late for p, _ in second.launched)
        assert late.node_name == "sgx-worker-9"

    def test_new_node_feeds_metrics(self, orchestrator):
        orchestrator.add_node(Node(NodeSpec.sgx("sgx-worker-9")), now=0.0)
        # Metrics collection polls the new node without error and its
        # node gauges appear.
        orchestrator.collect_metrics(now=1.0)
        from repro.monitoring.probe import MEASUREMENT_EPC_NODE

        points = orchestrator.db.scan(MEASUREMENT_EPC_NODE)
        assert any(
            p.tag("nodename") == "sgx-worker-9" for p in points
        )


class TestLateJoinPolicyInheritance:
    def test_late_joined_node_enforces_memory_limits(self):
        """Regression: kubelets for nodes joined after construction must
        inherit ``enforce_memory_limits`` — a pod exceeding its memory
        limit dies on a late-joined node exactly as on a bootstrap one.
        """
        from repro.cluster.topology import uniform_cluster
        from repro.units import gib

        orchestrator = Orchestrator(
            uniform_cluster(1, name_prefix="worker"),
            enforce_memory_limits=True,
        )
        scheduler = BinpackScheduler()
        # Fill the bootstrap node completely so the liar must land on
        # the late-joined one.
        blocker = orchestrator.submit(
            make_pod_spec(
                "blocker",
                duration_seconds=600.0,
                declared_memory_bytes=gib(64),
            ),
            now=0.0,
        )
        liar = orchestrator.submit(
            make_pod_spec(
                "liar",
                duration_seconds=600.0,
                declared_memory_bytes=gib(1),
                actual_memory_bytes=gib(8),
            ),
            now=0.5,
        )
        orchestrator.add_node(Node(NodeSpec.standard("worker-late")), now=0.9)
        result = orchestrator.scheduling_pass(scheduler, now=1.0)
        assert any(p is blocker for p, _ in result.launched)
        assert liar.node_name == "worker-late"
        assert liar in result.killed
        assert "memory limit" in (liar.failure_reason or "")

    def test_late_joined_kubelet_matches_bootstrap_flags(self):
        orchestrator = Orchestrator(
            paper_cluster(), enforce_memory_limits=True
        )
        late = orchestrator.add_node(
            Node(NodeSpec.standard("worker-9")), now=0.0
        )
        bootstrap = orchestrator.kubelets["worker-0"]
        assert late.enforce_memory_limits == bootstrap.enforce_memory_limits
        assert late.perf_model is bootstrap.perf_model
        assert late.registry is bootstrap.registry


class TestRemoveNode:
    def test_crash_requeues_running_pods(self, orchestrator):
        scheduler = BinpackScheduler()
        pod = orchestrator.submit(
            make_pod_spec(
                "svc", duration_seconds=600.0, declared_epc_bytes=mib(10)
            ),
            now=0.0,
        )
        orchestrator.scheduling_pass(scheduler, now=1.0)
        orchestrator.start_pod(pod, now=1.5)
        crashed = pod.node_name
        requeued = orchestrator.remove_node(crashed, now=100.0)
        assert pod.phase is PodPhase.FAILED
        assert "lost" in pod.failure_reason
        assert len(requeued) == 1
        replacement = requeued[0]
        assert replacement.spec.name == pod.spec.name
        # The replacement schedules onto a surviving node.
        result = orchestrator.scheduling_pass(scheduler, now=101.0)
        assert any(p is replacement for p, _ in result.launched)
        assert replacement.node_name != crashed

    def test_crash_reaps_probe(self, orchestrator):
        orchestrator.remove_node("sgx-worker-0", now=1.0)
        assert "sgx-worker-0" not in probe_nodes(orchestrator)
        # Metrics collection no longer touches the dead node.
        orchestrator.collect_metrics(now=2.0)

    def test_unknown_node_rejected(self, orchestrator):
        with pytest.raises(OrchestrationError):
            orchestrator.remove_node("ghost", now=1.0)

    def test_empty_node_removal_requeues_nothing(self, orchestrator):
        assert orchestrator.remove_node("worker-1", now=1.0) == []

    def test_cluster_shrinks(self, orchestrator):
        orchestrator.remove_node("worker-0", now=1.0)
        assert "worker-0" not in orchestrator.cluster
        assert "worker-0" not in orchestrator.kubelets
