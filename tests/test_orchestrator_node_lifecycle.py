"""Node add/remove: the paper's probe-follows-node behaviour (Sec. V-C)."""

import pytest

from repro.cluster.node import Node, NodeSpec
from repro.cluster.topology import paper_cluster
from repro.errors import OrchestrationError
from repro.orchestrator.api import PodPhase, make_pod_spec
from repro.orchestrator.controller import PROBE_DAEMONSET, Orchestrator
from repro.scheduler.binpack import BinpackScheduler
from repro.units import mib


@pytest.fixture
def orchestrator():
    return Orchestrator(paper_cluster())


def probe_nodes(orchestrator):
    return {
        p.node_name
        for p in orchestrator.daemonsets.payloads(PROBE_DAEMONSET)
    }


class TestAddNode:
    def test_new_sgx_node_gets_a_probe(self, orchestrator):
        orchestrator.add_node(Node(NodeSpec.sgx("sgx-worker-9")))
        assert "sgx-worker-9" in probe_nodes(orchestrator)

    def test_new_standard_node_gets_no_probe(self, orchestrator):
        orchestrator.add_node(Node(NodeSpec.standard("worker-9")))
        assert "worker-9" not in probe_nodes(orchestrator)

    def test_new_node_is_schedulable(self, orchestrator):
        # Fill both existing SGX nodes, then join a third: the pending
        # pod lands there on the next pass.
        for index in range(2):
            orchestrator.submit(
                make_pod_spec(
                    f"big-{index}",
                    duration_seconds=600.0,
                    declared_epc_bytes=mib(90),
                ),
                now=0.0,
            )
        late = orchestrator.submit(
            make_pod_spec(
                "late", duration_seconds=60.0, declared_epc_bytes=mib(50)
            ),
            now=0.0,
        )
        scheduler = BinpackScheduler()
        first = orchestrator.scheduling_pass(scheduler, now=1.0)
        assert late in first.deferred
        orchestrator.add_node(Node(NodeSpec.sgx("sgx-worker-9")))
        second = orchestrator.scheduling_pass(scheduler, now=6.0)
        assert any(p is late for p, _ in second.launched)
        assert late.node_name == "sgx-worker-9"

    def test_new_node_feeds_metrics(self, orchestrator):
        orchestrator.add_node(Node(NodeSpec.sgx("sgx-worker-9")))
        # Metrics collection polls the new node without error and its
        # node gauges appear.
        orchestrator.collect_metrics(now=1.0)
        from repro.monitoring.probe import MEASUREMENT_EPC_NODE

        points = orchestrator.db.scan(MEASUREMENT_EPC_NODE)
        assert any(
            p.tag("nodename") == "sgx-worker-9" for p in points
        )


class TestRemoveNode:
    def test_crash_requeues_running_pods(self, orchestrator):
        scheduler = BinpackScheduler()
        pod = orchestrator.submit(
            make_pod_spec(
                "svc", duration_seconds=600.0, declared_epc_bytes=mib(10)
            ),
            now=0.0,
        )
        orchestrator.scheduling_pass(scheduler, now=1.0)
        orchestrator.start_pod(pod, now=1.5)
        crashed = pod.node_name
        requeued = orchestrator.remove_node(crashed, now=100.0)
        assert pod.phase is PodPhase.FAILED
        assert "lost" in pod.failure_reason
        assert len(requeued) == 1
        replacement = requeued[0]
        assert replacement.spec.name == pod.spec.name
        # The replacement schedules onto a surviving node.
        result = orchestrator.scheduling_pass(scheduler, now=101.0)
        assert any(p is replacement for p, _ in result.launched)
        assert replacement.node_name != crashed

    def test_crash_reaps_probe(self, orchestrator):
        orchestrator.remove_node("sgx-worker-0", now=1.0)
        assert "sgx-worker-0" not in probe_nodes(orchestrator)
        # Metrics collection no longer touches the dead node.
        orchestrator.collect_metrics(now=2.0)

    def test_unknown_node_rejected(self, orchestrator):
        with pytest.raises(OrchestrationError):
            orchestrator.remove_node("ghost", now=1.0)

    def test_empty_node_removal_requeues_nothing(self, orchestrator):
        assert orchestrator.remove_node("worker-1", now=1.0) == []

    def test_cluster_shrinks(self, orchestrator):
        orchestrator.remove_node("worker-0", now=1.0)
        assert "worker-0" not in orchestrator.cluster
        assert "worker-0" not in orchestrator.kubelets
