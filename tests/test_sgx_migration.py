"""Secure enclave migration: protocol guarantees."""

import pytest

from repro.sgx.aesm import AesmService
from repro.sgx.driver import SgxDriver
from repro.sgx.epc import EnclavePageCache
from repro.sgx.migration import MigrationError, MigrationManager
from repro.units import mib, pages

POD = "/kubepods/burstable/podmig"


@pytest.fixture
def manager() -> MigrationManager:
    return MigrationManager()


def make_node(platform_id):
    """(driver, aesm) pair standing in for one machine."""
    driver = SgxDriver(EnclavePageCache())
    driver.register_process(1, POD)
    aesm = AesmService(platform_id=platform_id)
    aesm.start()
    return driver, aesm


def running_enclave(driver, aesm, size=mib(8), ecalls=3):
    enclave = driver.create_enclave(1, size_bytes=size)
    driver.initialize_enclave(1, enclave, aesm)
    for _ in range(ecalls):
        enclave.ecall("work")
    return enclave


class TestHappyPath:
    def test_checkpoint_restores_on_target(self, manager):
        src_driver, src_aesm = make_node("src")
        dst_driver, dst_aesm = make_node("dst")
        enclave = running_enclave(src_driver, src_aesm, ecalls=5)

        checkpoint, key = manager.checkpoint(
            src_driver, 1, enclave, src_aesm, dst_aesm
        )
        restored = manager.restore(
            dst_driver, 1, checkpoint, key, dst_aesm
        )
        # Observationally identical: same measurement, same call count.
        assert restored.measurement == checkpoint.measurement
        assert restored.ecall_count == 5
        assert restored.pages == pages(mib(8))

    def test_source_pages_freed_at_checkpoint(self, manager):
        src_driver, src_aesm = make_node("src")
        _, dst_aesm = make_node("dst")
        enclave = running_enclave(src_driver, src_aesm)
        manager.checkpoint(src_driver, 1, enclave, src_aesm, dst_aesm)
        assert src_driver.epc.allocated_pages == 0

    def test_source_self_destroyed(self, manager):
        src_driver, src_aesm = make_node("src")
        _, dst_aesm = make_node("dst")
        enclave = running_enclave(src_driver, src_aesm)
        manager.checkpoint(src_driver, 1, enclave, src_aesm, dst_aesm)
        from repro.errors import EnclaveStateError

        with pytest.raises(EnclaveStateError):
            enclave.ecall("after-checkpoint")

    def test_checkpoint_digest_stable(self, manager):
        src_driver, src_aesm = make_node("src")
        _, dst_aesm = make_node("dst")
        enclave = running_enclave(src_driver, src_aesm)
        checkpoint, _ = manager.checkpoint(
            src_driver, 1, enclave, src_aesm, dst_aesm
        )
        assert checkpoint.state_digest == checkpoint.state_digest


class TestAttacks:
    def setup_checkpoint(self, manager):
        src_driver, src_aesm = make_node("src")
        dst_driver, dst_aesm = make_node("dst")
        enclave = running_enclave(src_driver, src_aesm)
        checkpoint, key = manager.checkpoint(
            src_driver, 1, enclave, src_aesm, dst_aesm
        )
        return dst_driver, dst_aesm, checkpoint, key

    def test_fork_attack_double_restore_rejected(self, manager):
        dst_driver, dst_aesm, checkpoint, key = self.setup_checkpoint(
            manager
        )
        manager.restore(dst_driver, 1, checkpoint, key, dst_aesm)
        with pytest.raises(MigrationError, match="fork"):
            manager.restore(dst_driver, 1, checkpoint, key, dst_aesm)

    def test_restore_on_wrong_platform_rejected(self, manager):
        _, _, checkpoint, key = self.setup_checkpoint(manager)
        evil_driver, evil_aesm = make_node("evil")
        with pytest.raises(MigrationError, match="platform"):
            manager.restore(evil_driver, 1, checkpoint, key, evil_aesm)

    def test_mismatched_key_rejected(self, manager):
        dst_driver, dst_aesm, checkpoint, _ = self.setup_checkpoint(
            manager
        )
        _, _, _, other_key = self.setup_checkpoint(manager)
        with pytest.raises(MigrationError, match="not bound"):
            manager.restore(
                dst_driver, 1, checkpoint, other_key, dst_aesm
            )

    def test_rollback_attack_stale_generation_rejected(self, manager):
        src_driver, src_aesm = make_node("src")
        dst_driver, dst_aesm = make_node("dst")
        enclave = running_enclave(src_driver, src_aesm)
        old_checkpoint, old_key = manager.checkpoint(
            src_driver, 1, enclave, src_aesm, dst_aesm
        )
        # Migrate forward, run more work, checkpoint again.
        restored = manager.restore(
            dst_driver, 1, old_checkpoint, old_key, dst_aesm
        )
        restored.ecall("more-work")
        back_driver, back_aesm = make_node("src2")
        manager.checkpoint(
            dst_driver, 1, restored, dst_aesm, back_aesm
        )
        # Replaying the now-stale first checkpoint must fail, even on a
        # fresh manager-tracked lineage (generation is older).
        with pytest.raises(MigrationError):
            manager.restore(
                dst_driver, 1, old_checkpoint, old_key, dst_aesm
            )

    def test_checkpoint_requires_initialized_enclave(self, manager):
        src_driver, src_aesm = make_node("src")
        _, dst_aesm = make_node("dst")
        enclave = src_driver.create_enclave(1, size_bytes=mib(4))
        with pytest.raises(MigrationError, match="state"):
            manager.checkpoint(
                src_driver, 1, enclave, src_aesm, dst_aesm
            )


class TestLineage:
    def test_generations_increase_along_lineage(self, manager):
        src_driver, src_aesm = make_node("src")
        dst_driver, dst_aesm = make_node("dst")
        enclave = running_enclave(src_driver, src_aesm)
        first, key = manager.checkpoint(
            src_driver, 1, enclave, src_aesm, dst_aesm
        )
        restored = manager.restore(dst_driver, 1, first, key, dst_aesm)
        second, _ = manager.checkpoint(
            dst_driver, 1, restored, dst_aesm, src_aesm
        )
        assert second.lineage_id == first.lineage_id
        assert second.generation == first.generation + 1

    def test_distinct_enclaves_distinct_lineages(self, manager):
        src_driver, src_aesm = make_node("src")
        _, dst_aesm = make_node("dst")
        a = running_enclave(src_driver, src_aesm, size=mib(2))
        b = running_enclave(src_driver, src_aesm, size=mib(4))
        ca, _ = manager.checkpoint(src_driver, 1, a, src_aesm, dst_aesm)
        cb, _ = manager.checkpoint(src_driver, 1, b, src_aesm, dst_aesm)
        assert ca.lineage_id != cb.lineage_id
