"""Streaming readers: bounded memory, header/comment handling, errors."""

import json
import tracemalloc

import pytest

from repro.errors import TraceError
from repro.trace import Trace, load_borg_csv, resolve_trace
from repro.trace.schema import JobRecord
from repro.trace.stream import csv_rows, jsonl_rows


def _write_big_borg_csv(path, rows):
    with path.open("w") as handle:
        handle.write(
            "job_id,submit_time_seconds,duration_seconds,"
            "assigned_memory_fraction,max_memory_fraction\n"
        )
        for i in range(rows):
            handle.write(f"{i},{i}.0,60.0,0.01,0.02\n")


class TestBoundedMemory:
    def test_windowed_load_uses_far_less_than_full_load(self, tmp_path):
        """A narrow window over a 100k-row file must not buffer the file.

        The window keeps 500 of 100_000 rows; if the reader
        materialised every row before filtering, the two peaks would
        be comparable.
        """
        path = tmp_path / "big.csv"
        _write_big_borg_csv(path, 100_000)

        tracemalloc.start()
        full = load_borg_csv(path)
        _, full_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(full) == 100_000
        del full

        tracemalloc.start()
        windowed = resolve_trace(f"borg-csv:path={path},window=500")
        _, windowed_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(windowed) == 500
        assert windowed_peak < full_peak / 10

    def test_limit_short_circuits(self, tmp_path):
        path = tmp_path / "big.csv"
        _write_big_borg_csv(path, 100_000)
        tracemalloc.start()
        limited = resolve_trace(f"borg-csv:path={path},limit=100")
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(limited) == 100
        assert peak < 2_000_000  # a 100k-record list is far larger


class TestCsvRows:
    def test_header_comments_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(
            "# a comment\n"
            "\n"
            "id,start,duration\n"
            "1,0.0,60\n"
            "# mid-file comment\n"
            "2,5.0,30\n"
        )
        rows = list(csv_rows(path, columns=3, numeric_probe=1))
        assert [line for line, _ in rows] == [4, 6]
        assert rows[0][1] == ["1", "0.0", "60"]

    def test_headerless_file_keeps_first_row(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1,0.0,60\n2,5.0,30\n")
        rows = list(csv_rows(path, columns=3, numeric_probe=1))
        assert len(rows) == 2

    def test_arity_mismatch_carries_line(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1,0.0,60\n2,5.0\n")
        with pytest.raises(
            TraceError, match=r"t\.csv:2: expected 3 columns, got 2"
        ):
            list(csv_rows(path, columns=3, numeric_probe=1))

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            list(csv_rows(tmp_path / "absent.csv"))


class TestJsonlRows:
    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            "# comment\n\n" + json.dumps({"a": 1}) + "\n"
        )
        assert list(jsonl_rows(path)) == [(3, {"a": 1})]

    def test_bad_json_carries_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ok": 1}\n{broken\n')
        with pytest.raises(TraceError, match=r"t\.jsonl:2: bad JSON"):
            list(jsonl_rows(path))

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(TraceError, match="expected a JSON object"):
            list(jsonl_rows(path))


class TestLoaderErrors:
    def test_malformed_numeric_carries_line(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(
            "job_id,submit_time_seconds,duration_seconds,"
            "assigned_memory_fraction,max_memory_fraction\n"
            "0,0.0,60.0,0.01,0.02\n"
            "1,zap,60.0,0.01,0.02\n"
        )
        with pytest.raises(TraceError, match=r"t\.csv:3"):
            load_borg_csv(path)

    def test_nan_rejected_by_trace_validation(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(
            "job_id,submit_time_seconds,duration_seconds,"
            "assigned_memory_fraction,max_memory_fraction\n"
            "0,nan,60.0,0.01,0.02\n"
        )
        with pytest.raises(TraceError, match="finite"):
            load_borg_csv(path)

    def test_trace_rejects_nan_duration(self):
        record = JobRecord(
            job_id=0,
            submit_time=0.0,
            duration=60.0,
            assigned_memory=0.1,
            max_memory=0.1,
        )
        bad = object.__new__(JobRecord)
        object.__setattr__(bad, "job_id", 1)
        object.__setattr__(bad, "submit_time", 0.0)
        object.__setattr__(bad, "duration", float("nan"))
        object.__setattr__(bad, "assigned_memory", 0.1)
        object.__setattr__(bad, "max_memory", 0.1)
        with pytest.raises(TraceError, match="finite"):
            Trace([record, bad])
