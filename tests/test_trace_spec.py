"""Trace spec grammar: parsing, canonical formatting, typed options."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.trace.spec import (
    SpecOptions,
    TraceSpec,
    format_trace_spec,
    make_trace_spec,
    parse_duration,
    parse_trace_spec,
)


class TestParse:
    def test_bare_name(self):
        spec = parse_trace_spec("borg-synth")
        assert spec.name == "borg-synth"
        assert spec.options == ()

    def test_options_parsed_and_sorted(self):
        spec = parse_trace_spec("borg-synth:seed=7,jobs=500")
        assert spec.name == "borg-synth"
        assert spec.options == (("jobs", "500"), ("seed", "7"))

    def test_values_stay_raw_strings(self):
        spec = parse_trace_spec("google2019:path=/data/ev.jsonl,window=1h")
        assert dict(spec.options) == {
            "path": "/data/ev.jsonl",
            "window": "1h",
        }

    def test_whitespace_tolerated(self):
        spec = parse_trace_spec("  borg-synth: seed = 7 , jobs = 5  ")
        assert dict(spec.options) == {"seed": "7", "jobs": "5"}

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "Borg-Synth",
            "borg_synth",
            "-borg",
            "borg-",
            "borg--synth",
            "borg synth",
        ],
    )
    def test_bad_names_rejected(self, text):
        with pytest.raises(TraceError):
            parse_trace_spec(text)

    @pytest.mark.parametrize(
        "text",
        [
            "borg-synth:",
            "borg-synth:seed",
            "borg-synth:seed=",
            "borg-synth:=7",
            "borg-synth:Seed=7",
            "borg-synth:seed=7,,jobs=5",
        ],
    )
    def test_bad_options_rejected(self, text):
        with pytest.raises(TraceError):
            parse_trace_spec(text)

    def test_duplicate_key_rejected(self):
        with pytest.raises(TraceError, match="duplicate option 'seed'"):
            parse_trace_spec("borg-synth:seed=7,seed=8")


class TestFormat:
    def test_canonical_form_is_sorted(self):
        spec = parse_trace_spec("borg-synth:seed=7,jobs=500")
        assert format_trace_spec(spec) == "borg-synth:jobs=500,seed=7"
        assert str(spec) == format_trace_spec(spec)

    def test_make_trace_spec_stringifies(self):
        assert (
            make_trace_spec("borg-synth", [("seed", 7), ("jobs", 500)])
            == "borg-synth:jobs=500,seed=7"
        )
        assert make_trace_spec("borg-synth") == "borg-synth"


_names = st.from_regex(r"[a-z0-9]+(-[a-z0-9]+){0,2}", fullmatch=True)
_keys = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
_values = st.text(
    alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd"),
        whitelist_characters="./_-:",
    ),
    min_size=1,
    max_size=12,
)


class TestRoundTrip:
    @given(
        name=_names,
        options=st.dictionaries(_keys, _values, max_size=5),
    )
    def test_parse_format_round_trip(self, name, options):
        spec = TraceSpec(
            name=name, options=tuple(sorted(options.items()))
        )
        reparsed = parse_trace_spec(format_trace_spec(spec))
        assert reparsed == spec
        # Formatting the reparse is a fixed point (canonical form).
        assert format_trace_spec(reparsed) == format_trace_spec(spec)


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,seconds",
        [
            ("90", 90.0),
            ("90s", 90.0),
            ("1.5m", 90.0),
            ("1h", 3600.0),
            ("2d", 172_800.0),
            (".5h", 1800.0),
            (42, 42.0),
            (1.5, 1.5),
        ],
    )
    def test_literals(self, text, seconds):
        assert parse_duration(text) == seconds

    @pytest.mark.parametrize("text", ["", "h", "-5", "5w", "1.2.3"])
    def test_bad_literals(self, text):
        with pytest.raises(TraceError, match="bad duration"):
            parse_duration(text)


class TestSpecOptions:
    def reader(self, text, *consumed):
        return parse_trace_spec(text).reader(*consumed)

    def test_integer_with_minimum(self):
        options = self.reader("x:jobs=50")
        assert options.integer("jobs", None, minimum=1) == 50
        with pytest.raises(TraceError, match="must be >= 1"):
            self.reader("x:jobs=0").integer("jobs", None, minimum=1)
        with pytest.raises(TraceError, match="must be an integer"):
            self.reader("x:jobs=five").integer("jobs")

    def test_defaults_when_absent(self):
        options = self.reader("x")
        assert options.integer("jobs", 663) == 663
        assert options.number("sigma", 1.6) == 1.6
        assert options.flag("renumber", True) is True
        assert options.string("mode") is None

    def test_fraction_bounds(self):
        assert self.reader("x:f=0.5").fraction("f") == 0.5
        with pytest.raises(TraceError, match="fraction"):
            self.reader("x:f=1.5").fraction("f")

    def test_duration_option(self):
        assert self.reader("x:window=1h").duration("window") == 3600.0
        with pytest.raises(TraceError, match="window"):
            self.reader("x:window=1w").duration("window")

    def test_flag_values(self):
        for raw, expected in (
            ("true", True), ("YES", True), ("1", True), ("on", True),
            ("false", False), ("no", False), ("0", False), ("off", False),
        ):
            assert self.reader(f"x:r={raw}").flag("r") is expected
        with pytest.raises(TraceError, match="boolean"):
            self.reader("x:r=maybe").flag("r")

    def test_path_required(self):
        assert self.reader("x:path=a.csv").path() == "a.csv"
        with pytest.raises(TraceError, match="'path' is required"):
            self.reader("x").path()

    def test_finish_rejects_unclaimed_naming_accepted(self):
        options = self.reader("x:jobs=5,warp=9", "seed")
        options.integer("jobs")
        with pytest.raises(TraceError) as excinfo:
            options.finish()
        message = str(excinfo.value)
        assert "warp" in message
        assert "jobs" in message and "seed" in message

    def test_finish_passes_when_all_claimed(self):
        options = self.reader("x:jobs=5")
        options.integer("jobs")
        options.finish()

    def test_errors_carry_spec_and_key(self):
        with pytest.raises(TraceError) as excinfo:
            self.reader("x:jobs=zap").integer("jobs")
        assert "'x:jobs=zap'" in str(excinfo.value)
        assert "'jobs'" in str(excinfo.value)

    def test_consumed_keys_preclaimed(self):
        options = SpecOptions(
            parse_trace_spec("x:seed=3"), consumed=("seed",)
        )
        options.finish()  # seed is claimed even though never read
