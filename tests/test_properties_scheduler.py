"""Property-based tests: scheduler safety invariants.

Whatever the workload, no strategy may (a) place an SGX pod on a node
without SGX, (b) over-commit any node dimension within a pass, or
(c) violate FCFS priority among same-feasibility pods.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import ResourceVector
from repro.orchestrator.api import PodSpec, ResourceRequirements
from repro.orchestrator.pod import Pod
from repro.scheduler.base import NodeView
from repro.scheduler.binpack import BinpackScheduler
from repro.scheduler.kube_default import KubeDefaultScheduler
from repro.scheduler.spread import SpreadScheduler
from repro.units import gib

pod_strategy = st.builds(
    lambda name, mem_gib, epc: Pod(
        PodSpec(
            name=name,
            resources=ResourceRequirements(
                requests=ResourceVector(
                    memory_bytes=gib(mem_gib), epc_pages=epc
                )
            ),
        ),
        submitted_at=0.0,
    ),
    name=st.uuids().map(str),
    mem_gib=st.integers(min_value=0, max_value=70),
    epc=st.integers(min_value=0, max_value=30_000),
)

scheduler_strategy = st.sampled_from(
    [BinpackScheduler(), SpreadScheduler(), KubeDefaultScheduler()]
)


def fresh_views():
    return [
        NodeView(
            name="worker-0",
            sgx_capable=False,
            capacity=ResourceVector(
                cpu_millicores=8000, memory_bytes=gib(64)
            ),
        ),
        NodeView(
            name="worker-1",
            sgx_capable=False,
            capacity=ResourceVector(
                cpu_millicores=8000, memory_bytes=gib(64)
            ),
        ),
        NodeView(
            name="sgx-worker-0",
            sgx_capable=True,
            capacity=ResourceVector(
                cpu_millicores=8000, memory_bytes=gib(8), epc_pages=23_936
            ),
        ),
        NodeView(
            name="sgx-worker-1",
            sgx_capable=True,
            capacity=ResourceVector(
                cpu_millicores=8000, memory_bytes=gib(8), epc_pages=23_936
            ),
        ),
    ]


@given(
    pods=st.lists(pod_strategy, max_size=25),
    scheduler=scheduler_strategy,
)
@settings(max_examples=100)
def test_no_sgx_pod_on_standard_node(pods, scheduler):
    outcome = scheduler.schedule(pods, fresh_views(), now=0.0)
    for assignment in outcome.assignments:
        if assignment.pod.requires_sgx:
            assert assignment.node_name.startswith("sgx-")


@given(
    pods=st.lists(pod_strategy, max_size=25),
    scheduler=scheduler_strategy,
)
@settings(max_examples=100)
def test_no_dimension_overcommitted_in_one_pass(pods, scheduler):
    views = fresh_views()
    capacities = {v.name: v.capacity for v in views}
    outcome = scheduler.schedule(pods, views, now=0.0)
    placed = {}
    for assignment in outcome.assignments:
        total = placed.get(assignment.node_name, ResourceVector.zero())
        placed[assignment.node_name] = (
            total + assignment.pod.spec.resources.requests
        )
    for node_name, total in placed.items():
        assert total.fits_within(capacities[node_name]), node_name


@given(
    pods=st.lists(pod_strategy, max_size=25),
    scheduler=scheduler_strategy,
)
@settings(max_examples=100)
def test_every_pod_accounted_exactly_once(pods, scheduler):
    outcome = scheduler.schedule(pods, fresh_views(), now=0.0)
    assigned = {a.pod.uid for a in outcome.assignments}
    deferred = {p.uid for p in outcome.deferred}
    unschedulable = {p.uid for p in outcome.unschedulable}
    assert assigned | deferred | unschedulable == {p.uid for p in pods}
    assert not (assigned & deferred)
    assert not (assigned & unschedulable)
    assert not (deferred & unschedulable)


@given(pods=st.lists(pod_strategy, max_size=25))
@settings(max_examples=100)
def test_binpack_fcfs_priority(pods):
    """If an older pod was deferred, no younger identical pod ran."""
    scheduler = BinpackScheduler()
    outcome = scheduler.schedule(pods, fresh_views(), now=0.0)
    deferred_requests = [
        p.spec.resources.requests for p in outcome.deferred
    ]
    order = {p.uid: i for i, p in enumerate(pods)}
    for assignment in outcome.assignments:
        for deferred_pod in outcome.deferred:
            if order[assignment.pod.uid] > order[deferred_pod.uid]:
                # A younger pod ran while an older one waited: the
                # younger one must be strictly easier to place in some
                # dimension (smaller in at least one resource).
                younger = assignment.pod.spec.resources.requests
                older = deferred_pod.spec.resources.requests
                assert not older.fits_within(younger) or younger == older
    assert deferred_requests is not None  # silence lint on unused var
