"""Concurrent schedulers over one cluster (Sec. V-B)."""

from repro.cluster.topology import paper_cluster
from repro.orchestrator.api import make_pod_spec
from repro.orchestrator.controller import Orchestrator
from repro.scheduler.binpack import BinpackScheduler
from repro.scheduler.spread import SpreadScheduler
from repro.units import mib


def submit_pair(orchestrator):
    """One pod per scheduler, same shape."""
    binpack_pod = orchestrator.submit(
        make_pod_spec(
            "bp-pod",
            duration_seconds=60.0,
            declared_epc_bytes=mib(10),
            scheduler_name="sgx-aware-binpack",
        ),
        now=0.0,
    )
    spread_pod = orchestrator.submit(
        make_pod_spec(
            "sp-pod",
            duration_seconds=60.0,
            declared_epc_bytes=mib(10),
            scheduler_name="sgx-aware-spread",
        ),
        now=0.0,
    )
    return binpack_pod, spread_pod


class TestMultiScheduler:
    def test_each_scheduler_takes_only_its_pods(self):
        orchestrator = Orchestrator(paper_cluster())
        binpack_pod, spread_pod = submit_pair(orchestrator)
        binpack_pass = orchestrator.scheduling_pass(
            BinpackScheduler(), now=1.0, only_matching=True
        )
        assert [p.name for p, _ in binpack_pass.launched] == ["bp-pod"]
        assert spread_pod in orchestrator.queue
        spread_pass = orchestrator.scheduling_pass(
            SpreadScheduler(), now=2.0, only_matching=True
        )
        assert [p.name for p, _ in spread_pass.launched] == ["sp-pod"]
        assert len(orchestrator.queue) == 0

    def test_default_pass_ignores_selection(self):
        orchestrator = Orchestrator(paper_cluster())
        submit_pair(orchestrator)
        result = orchestrator.scheduling_pass(BinpackScheduler(), now=1.0)
        assert len(result.launched) == 2

    def test_unmatched_pods_stay_pending(self):
        orchestrator = Orchestrator(paper_cluster())
        _, spread_pod = submit_pair(orchestrator)
        orchestrator.scheduling_pass(
            BinpackScheduler(), now=1.0, only_matching=True
        )
        assert spread_pod.phase.value == "Pending"

    def test_both_strategies_share_cluster_state(self):
        # A pod placed by one scheduler occupies capacity the other
        # scheduler must respect.
        orchestrator = Orchestrator(paper_cluster(sgx_workers=1))
        big = orchestrator.submit(
            make_pod_spec(
                "bp-big",
                duration_seconds=600.0,
                declared_epc_bytes=mib(90),
                scheduler_name="sgx-aware-binpack",
            ),
            now=0.0,
        )
        blocked = orchestrator.submit(
            make_pod_spec(
                "sp-blocked",
                duration_seconds=60.0,
                declared_epc_bytes=mib(50),
                scheduler_name="sgx-aware-spread",
            ),
            now=0.0,
        )
        first = orchestrator.scheduling_pass(
            BinpackScheduler(), now=1.0, only_matching=True
        )
        assert any(p is big for p, _ in first.launched)
        second = orchestrator.scheduling_pass(
            SpreadScheduler(), now=2.0, only_matching=True
        )
        assert blocked in second.deferred
