"""Cgroup hierarchy: the pod-identifier substrate of Section V-D."""

import pytest

from repro.cluster.cgroups import QOS_CLASSES, CgroupHierarchy
from repro.errors import CgroupError


@pytest.fixture
def hierarchy() -> CgroupHierarchy:
    return CgroupHierarchy()


class TestTree:
    def test_qos_parents_exist(self, hierarchy):
        for qos in QOS_CLASSES:
            assert hierarchy.exists(f"/kubepods/{qos}")

    def test_create_with_ancestors(self, hierarchy):
        hierarchy.create("/a/b/c")
        assert hierarchy.exists("/a")
        assert hierarchy.exists("/a/b")
        assert hierarchy.exists("/a/b/c")

    def test_create_is_idempotent(self, hierarchy):
        first = hierarchy.create("/x")
        second = hierarchy.create("/x")
        assert first is second

    def test_relative_path_rejected(self, hierarchy):
        with pytest.raises(CgroupError):
            hierarchy.create("relative/path")

    def test_remove_empty_subtree(self, hierarchy):
        hierarchy.create("/x/y")
        hierarchy.remove("/x")
        assert not hierarchy.exists("/x")
        assert not hierarchy.exists("/x/y")

    def test_remove_with_pids_rejected(self, hierarchy):
        hierarchy.create("/x")
        hierarchy.attach(1, "/x")
        with pytest.raises(CgroupError, match="attached pids"):
            hierarchy.remove("/x")

    def test_remove_unknown_rejected(self, hierarchy):
        with pytest.raises(CgroupError):
            hierarchy.remove("/ghost")

    def test_remove_root_rejected(self, hierarchy):
        with pytest.raises(CgroupError):
            hierarchy.remove("/")

    def test_get_unknown_rejected(self, hierarchy):
        with pytest.raises(CgroupError):
            hierarchy.get("/nope")


class TestAttachment:
    def test_attach_and_lookup(self, hierarchy):
        hierarchy.create("/x")
        hierarchy.attach(7, "/x")
        assert hierarchy.cgroup_of(7) == "/x"

    def test_attach_migrates(self, hierarchy):
        hierarchy.create("/x")
        hierarchy.create("/y")
        hierarchy.attach(7, "/x")
        hierarchy.attach(7, "/y")
        assert hierarchy.cgroup_of(7) == "/y"
        assert 7 not in hierarchy.get("/x").pids

    def test_detach(self, hierarchy):
        hierarchy.create("/x")
        hierarchy.attach(7, "/x")
        hierarchy.detach(7)
        assert hierarchy.cgroup_of(7) is None

    def test_all_pids_covers_subtree(self, hierarchy):
        hierarchy.create("/x/y")
        hierarchy.attach(1, "/x")
        hierarchy.attach(2, "/x/y")
        assert hierarchy.get("/x").all_pids() == {1, 2}


class TestPodCgroups:
    def test_pod_path_shape(self, hierarchy):
        path = hierarchy.pod_cgroup_path("abc123")
        assert path == "/kubepods/burstable/podabc123"

    def test_pod_path_available_before_processes(self, hierarchy):
        # Property (iii) of Section V-D: the path exists before any
        # container process starts.
        path = hierarchy.create_pod_cgroup("abc123")
        assert hierarchy.exists(path)
        assert hierarchy.get(path).pids == set()

    def test_distinct_pods_distinct_paths(self, hierarchy):
        a = hierarchy.create_pod_cgroup("pod-a")
        b = hierarchy.create_pod_cgroup("pod-b")
        assert a != b

    def test_duplicate_pod_cgroup_rejected(self, hierarchy):
        hierarchy.create_pod_cgroup("abc")
        with pytest.raises(CgroupError):
            hierarchy.create_pod_cgroup("abc")

    def test_unknown_qos_rejected(self, hierarchy):
        with pytest.raises(CgroupError):
            hierarchy.pod_cgroup_path("abc", qos="platinum")
