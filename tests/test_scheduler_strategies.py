"""Binpack, spread and the Kubernetes-default baseline."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.errors import SchedulingError
from repro.orchestrator.api import PodSpec, ResourceRequirements
from repro.orchestrator.pod import Pod
from repro.scheduler.base import NodeView
from repro.scheduler.binpack import BinpackScheduler
from repro.scheduler.kube_default import KubeDefaultScheduler
from repro.scheduler.spread import SpreadScheduler
from repro.units import gib


def make_pod(name="p", epc=0, mem=0) -> Pod:
    spec = PodSpec(
        name=name,
        resources=ResourceRequirements(
            requests=ResourceVector(memory_bytes=mem, epc_pages=epc)
        ),
    )
    return Pod(spec, submitted_at=0.0)


def std_view(name, used_mem=0):
    return NodeView(
        name=name,
        sgx_capable=False,
        capacity=ResourceVector(cpu_millicores=8000, memory_bytes=gib(64)),
        used=ResourceVector(memory_bytes=used_mem),
        committed=ResourceVector(memory_bytes=used_mem),
    )


def sgx_view(name, used_epc=0):
    return NodeView(
        name=name,
        sgx_capable=True,
        capacity=ResourceVector(
            cpu_millicores=8000, memory_bytes=gib(8), epc_pages=23_936
        ),
        used=ResourceVector(epc_pages=used_epc),
        committed=ResourceVector(epc_pages=used_epc),
    )


def paper_views():
    return [
        std_view("worker-0"),
        std_view("worker-1"),
        sgx_view("sgx-worker-0"),
        sgx_view("sgx-worker-1"),
    ]


class TestBinpack:
    def test_fills_first_node_until_insufficient(self):
        scheduler = BinpackScheduler()
        pods = [make_pod(f"p{i}", mem=gib(30)) for i in range(3)]
        outcome = scheduler.schedule(pods, paper_views(), now=0.0)
        nodes = [a.node_name for a in outcome.assignments]
        # Two 30 GiB pods fit worker-0 (64 GiB); the third spills over.
        assert nodes == ["worker-0", "worker-0", "worker-1"]

    def test_standard_jobs_use_sgx_nodes_last(self):
        scheduler = BinpackScheduler()
        views = paper_views()
        # Saturate both standard nodes.
        views[0].used = ResourceVector(memory_bytes=gib(64))
        views[1].used = ResourceVector(memory_bytes=gib(64))
        outcome = scheduler.schedule(
            [make_pod(mem=gib(4))], views, now=0.0
        )
        assert outcome.assignments[0].node_name == "sgx-worker-0"

    def test_sgx_job_lands_on_sgx_node(self):
        scheduler = BinpackScheduler()
        outcome = scheduler.schedule(
            [make_pod(epc=100)], paper_views(), now=0.0
        )
        assert outcome.assignments[0].node_name == "sgx-worker-0"

    def test_preserve_toggle_off_mixes_nodes(self):
        scheduler = BinpackScheduler(preserve_sgx_nodes=False)
        views = [sgx_view("a-sgx"), std_view("b-std")]
        outcome = scheduler.schedule(
            [make_pod(mem=gib(1))], views, now=0.0
        )
        # Without preservation, pure name order wins: the SGX node
        # sorts first and takes the standard pod.
        assert outcome.assignments[0].node_name == "a-sgx"

    def test_never_overcommits_within_one_pass(self):
        scheduler = BinpackScheduler()
        views = [sgx_view("sgx-0")]
        pods = [make_pod(f"p{i}", epc=12_000) for i in range(3)]
        outcome = scheduler.schedule(pods, views, now=0.0)
        assert len(outcome.assignments) == 1  # 2 x 12 000 > 23 936
        assert len(outcome.deferred) == 2

    def test_unschedulable_pod_reported(self):
        scheduler = BinpackScheduler()
        outcome = scheduler.schedule(
            [make_pod(epc=30_000)], paper_views(), now=0.0
        )
        assert len(outcome.unschedulable) == 1


class TestSpread:
    def test_balances_load_across_nodes(self):
        scheduler = SpreadScheduler()
        views = [std_view("w0", used_mem=gib(20)), std_view("w1")]
        outcome = scheduler.schedule(
            [make_pod(mem=gib(4))], views, now=0.0
        )
        assert outcome.assignments[0].node_name == "w1"

    def test_alternates_between_equal_nodes(self):
        scheduler = SpreadScheduler()
        views = [sgx_view("s0"), sgx_view("s1")]
        pods = [make_pod(f"p{i}", epc=1000) for i in range(4)]
        outcome = scheduler.schedule(pods, views, now=0.0)
        nodes = [a.node_name for a in outcome.assignments]
        assert nodes == ["s0", "s1", "s0", "s1"]

    def test_standard_jobs_avoid_sgx_nodes(self):
        scheduler = SpreadScheduler()
        views = paper_views()
        views[0].used = ResourceVector(memory_bytes=gib(32))
        views[1].used = ResourceVector(memory_bytes=gib(32))
        # SGX nodes are idle (load 0) and would minimise the stddev, but
        # preservation keeps the standard pod off them.
        outcome = scheduler.schedule(
            [make_pod(mem=gib(4))], views, now=0.0
        )
        assert outcome.assignments[0].node_name.startswith("worker")


class TestKubeDefault:
    def test_uses_declared_not_measured(self):
        scheduler = KubeDefaultScheduler()
        view = sgx_view("s0")
        # Measured says full; declared says empty.  The baseline trusts
        # declarations and schedules anyway.
        view.used = ResourceVector(epc_pages=23_936)
        view.committed = ResourceVector.zero()
        outcome = scheduler.schedule(
            [make_pod(epc=20_000)], [view], now=0.0
        )
        assert len(outcome.assignments) == 1

    def test_measured_scheduler_defers_same_case(self):
        scheduler = BinpackScheduler()
        view = sgx_view("s0")
        view.used = ResourceVector(epc_pages=23_936)
        view.committed = ResourceVector.zero()
        outcome = scheduler.schedule(
            [make_pod(epc=20_000)], [view], now=0.0
        )
        assert outcome.assignments == []
        assert len(outcome.deferred) == 1

    def test_least_requested_spreading(self):
        scheduler = KubeDefaultScheduler()
        views = [std_view("w0", used_mem=gib(30)), std_view("w1")]
        outcome = scheduler.schedule(
            [make_pod(mem=gib(1))], views, now=0.0
        )
        assert outcome.assignments[0].node_name == "w1"


class TestFcfsSemantics:
    def test_fcfs_priority_oldest_first(self):
        scheduler = BinpackScheduler()
        views = [sgx_view("s0")]
        old = make_pod("old", epc=20_000)
        new = make_pod("new", epc=20_000)
        outcome = scheduler.schedule([old, new], views, now=0.0)
        assert outcome.assignments[0].pod.name == "old"
        assert outcome.deferred == [new]

    def test_skip_allows_younger_smaller_jobs(self):
        scheduler = BinpackScheduler()
        views = [sgx_view("s0", used_epc=20_000)]
        blocked = make_pod("blocked", epc=10_000)
        small = make_pod("small", epc=1_000)
        outcome = scheduler.schedule([blocked, small], views, now=0.0)
        assert [a.pod.name for a in outcome.assignments] == ["small"]

    def test_strict_fcfs_blocks_younger_jobs(self):
        scheduler = BinpackScheduler(strict_fcfs=True)
        views = [sgx_view("s0", used_epc=20_000)]
        blocked = make_pod("blocked", epc=10_000)
        small = make_pod("small", epc=1_000)
        outcome = scheduler.schedule([blocked, small], views, now=0.0)
        assert outcome.assignments == []
        assert [p.name for p in outcome.deferred] == ["blocked", "small"]

    def test_declared_only_mode_resets_views(self):
        scheduler = BinpackScheduler(use_measured=False)
        view = sgx_view("s0")
        view.used = ResourceVector(epc_pages=23_936)  # measured: full
        view.committed = ResourceVector.zero()  # declared: empty
        outcome = scheduler.schedule([make_pod(epc=100)], [view], now=0.0)
        assert len(outcome.assignments) == 1


class TestInvariantGuard:
    def test_selecting_saturated_node_raises(self):
        class BrokenScheduler(BinpackScheduler):
            def _select(self, pod, candidates, views):
                view = candidates[0]
                view.used = view.capacity  # saturate behind the filter
                return view

        scheduler = BrokenScheduler()
        with pytest.raises(SchedulingError):
            scheduler.schedule([make_pod(epc=10)], [sgx_view("s0")], 0.0)
