"""AESM / PSW model: launch tokens, quotes, startup cost."""

import pytest

from repro.errors import LaunchTokenError
from repro.sgx.aesm import AesmService, PlatformSoftware


class TestLifecycle:
    def test_not_running_initially(self):
        assert not AesmService().running

    def test_start_returns_startup_latency(self):
        service = AesmService()
        assert service.start() == pytest.approx(0.100)
        assert service.running

    def test_stop(self):
        service = AesmService()
        service.start()
        service.stop()
        assert not service.running


class TestLaunchTokens:
    def test_token_requires_running_service(self):
        with pytest.raises(LaunchTokenError):
            AesmService().get_launch_token("meas", "vendor")

    def test_token_matches_measurement(self):
        service = AesmService()
        service.start()
        token = service.get_launch_token("meas", "vendor")
        assert token.matches("meas")
        assert not token.matches("other")

    def test_empty_measurement_rejected(self):
        service = AesmService()
        service.start()
        with pytest.raises(LaunchTokenError):
            service.get_launch_token("", "vendor")

    def test_token_ids_are_unique(self):
        service = AesmService()
        service.start()
        a = service.get_launch_token("m", "v")
        b = service.get_launch_token("m", "v")
        assert a.token_id != b.token_id


class TestQuotes:
    def test_quote_requires_running_service(self):
        with pytest.raises(LaunchTokenError):
            AesmService().get_quote("meas")

    def test_quote_digest_is_deterministic(self):
        service = AesmService(platform_id="p1")
        service.start()
        a = service.get_quote("meas", "report")
        b = service.get_quote("meas", "report")
        assert a.digest == b.digest

    def test_quote_digest_binds_platform(self):
        s1 = AesmService(platform_id="p1")
        s2 = AesmService(platform_id="p2")
        s1.start()
        s2.start()
        assert s1.get_quote("m").digest != s2.get_quote("m").digest


class TestPlatformSoftware:
    def test_boot_starts_aesm(self):
        psw = PlatformSoftware("container-1")
        latency = psw.boot()
        assert latency == pytest.approx(0.100)
        assert psw.aesm.running

    def test_shutdown_stops_aesm(self):
        psw = PlatformSoftware("container-1")
        psw.boot()
        psw.shutdown()
        assert not psw.aesm.running

    def test_default_platform_id_includes_container(self):
        psw = PlatformSoftware("abc")
        assert "abc" in psw.aesm.platform_id
