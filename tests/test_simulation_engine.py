"""Discrete-event engine: ordering, cancellation, termination."""

import pytest

from repro.errors import SimulationError
from repro.simulation.engine import SimulationEngine


class TestOrdering:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(3.0, lambda: fired.append(3))
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1, 2, 3]

    def test_ties_break_by_scheduling_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append("first"))
        engine.schedule_at(1.0, lambda: fired.append("second"))
        engine.run()
        assert fired == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_at(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.0]
        assert engine.now == 5.0

    def test_schedule_in_is_relative(self):
        engine = SimulationEngine(start_time=10.0)
        seen = []
        engine.schedule_in(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [15.0]

    def test_events_can_schedule_events(self):
        engine = SimulationEngine()
        fired = []

        def chain():
            fired.append(engine.now)
            if engine.now < 3.0:
                engine.schedule_in(1.0, chain)

        engine.schedule_at(1.0, chain)
        engine.run()
        assert fired == [1.0, 2.0, 3.0]


class TestValidation:
    def test_scheduling_in_past_rejected(self):
        engine = SimulationEngine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule_in(-1.0, lambda: None)

    def test_runaway_loop_detected(self):
        engine = SimulationEngine()

        def forever():
            engine.schedule_in(0.0, forever)

        engine.schedule_at(0.0, forever)
        with pytest.raises(SimulationError, match="runaway"):
            engine.run(max_events=1000)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine()
        fired = []
        handle = engine.schedule_at(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        engine = SimulationEngine()
        handle = engine.schedule_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()

    def test_pending_events_excludes_cancelled(self):
        engine = SimulationEngine()
        keep = engine.schedule_at(1.0, lambda: None)
        drop = engine.schedule_at(2.0, lambda: None)
        drop.cancel()
        assert engine.pending_events == 1
        assert keep.time == 1.0


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        engine.run()
        assert fired == [1, 10]

    def test_run_until_advances_clock_when_idle(self):
        engine = SimulationEngine()
        engine.run(until=100.0)
        assert engine.now == 100.0

    def test_step(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(2.0, lambda: fired.append(2))
        assert engine.step()
        assert fired == [1]
        assert engine.step()
        assert not engine.step()

    def test_fired_events_counter(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda: None)
        engine.run()
        assert engine.fired_events == 1


class TestPendingCounter:
    def test_counter_tracks_schedule_fire_cancel(self):
        engine = SimulationEngine()
        handles = [
            engine.schedule_at(float(i), lambda: None) for i in range(5)
        ]
        assert engine.pending_events == 5
        handles[0].cancel()
        assert engine.pending_events == 4
        engine.run(until=2.5)
        assert engine.pending_events == 2

    def test_cancel_after_fire_is_noop(self):
        engine = SimulationEngine()
        handle = engine.schedule_at(1.0, lambda: None)
        engine.run()
        assert engine.pending_events == 0
        handle.cancel()
        handle.cancel()
        assert engine.pending_events == 0

    def test_counter_matches_queue_census(self):
        engine = SimulationEngine()
        handles = [
            engine.schedule_at(float(i % 7), lambda: None) for i in range(50)
        ]
        for handle in handles[::3]:
            handle.cancel()
        census = sum(1 for e in engine._queue if not e[2].cancelled)
        assert engine.pending_events == census

    def test_cancel_during_run_keeps_counter_consistent(self):
        engine = SimulationEngine()
        victim = engine.schedule_at(5.0, lambda: None)
        engine.schedule_at(1.0, victim.cancel)
        engine.run()
        assert engine.pending_events == 0
        assert engine.fired_events == 1


class TestCompaction:
    def test_dominating_cancellations_shrink_the_heap(self):
        engine = SimulationEngine()
        handles = [
            engine.schedule_at(float(i), lambda: None) for i in range(1000)
        ]
        for handle in handles[:900]:
            handle.cancel()
        assert engine.pending_events == 100
        # Dead handles were compacted away, not retained until their
        # timestamps drain.
        assert len(engine._queue) <= 200

    def test_compaction_preserves_firing_order(self):
        engine = SimulationEngine()
        fired = []
        keepers = []
        for i in range(300):
            engine.schedule_at(float(i), lambda i=i: fired.append(i))
            if i % 10 == 0:
                keepers.append(i)
        # Cancel everything not a keeper (in one pass so the heap sees
        # many dead entries at once and compacts mid-stream).
        for _, _, handle in list(engine._queue):
            if int(handle.time) not in keepers:
                handle.cancel()
        engine.run()
        assert fired == keepers

    def test_small_cancel_counts_do_not_compact(self):
        engine = SimulationEngine()
        handles = [
            engine.schedule_at(float(i), lambda: None) for i in range(20)
        ]
        for handle in handles[:10]:
            handle.cancel()
        assert len(engine._queue) == 20  # below the compaction floor
        engine.run()
        assert engine.fired_events == 10

    def test_threshold_is_proportional_to_heap_size(self):
        # The compaction trigger scales with the heap: cancelled
        # handles may pile up to just under half the heap, and the
        # very next cancel that tips the ratio compacts.  Pin the
        # bound exactly so the policy can't silently regress to a
        # fixed count.
        n = 400
        engine = SimulationEngine()
        handles = [
            engine.schedule_at(float(i), lambda: None) for i in range(n)
        ]
        # One shy of the threshold: cancelled * 2 < len(queue).
        for handle in handles[: n // 2 - 1]:
            handle.cancel()
        assert len(engine._queue) == n  # not yet compacted
        assert engine._cancelled == n // 2 - 1
        # Tipping cancel: cancelled * 2 == len(queue) -> compact.
        handles[n // 2 - 1].cancel()
        assert len(engine._queue) == engine.pending_events == n // 2
        assert engine._cancelled == 0

    def test_compaction_floor_exempts_tiny_heaps(self):
        floor = SimulationEngine.COMPACT_MIN_QUEUE
        engine = SimulationEngine()
        handles = [
            engine.schedule_at(float(i), lambda: None)
            for i in range(floor - 1)
        ]
        for handle in handles:
            handle.cancel()
        # Every event cancelled, yet the heap stays intact: below the
        # floor, compaction would cost more than the dead entries do.
        assert len(engine._queue) == floor - 1
        engine.run()
        assert engine.fired_events == 0
