"""Retryable launch failures: unbind and requeue semantics."""

import pytest

from repro.cluster.topology import paper_cluster
from repro.errors import OrchestrationError
from repro.orchestrator.api import PodPhase, PodSpec, make_pod_spec
from repro.orchestrator.controller import Orchestrator
from repro.orchestrator.pod import Pod
from repro.scheduler.binpack import BinpackScheduler
from repro.units import mib


class TestMarkUnbound:
    def test_unbind_resets_binding_state(self):
        pod = Pod(PodSpec(name="p"), submitted_at=0.0)
        pod.mark_bound("node", 1.0)
        pod.mark_unbound()
        assert pod.phase is PodPhase.PENDING
        assert pod.node_name is None
        assert pod.bound_at is None

    def test_unbind_requires_bound(self):
        pod = Pod(PodSpec(name="p"), submitted_at=0.0)
        with pytest.raises(OrchestrationError):
            pod.mark_unbound()

    def test_rebind_after_unbind(self):
        pod = Pod(PodSpec(name="p"), submitted_at=0.0)
        pod.mark_bound("a", 1.0)
        pod.mark_unbound()
        pod.mark_bound("b", 2.0)
        assert pod.node_name == "b"


class TestControllerRequeue:
    def test_epc_race_requeues_instead_of_killing(self):
        """A pod whose enclave creation finds the EPC full goes back to
        the queue; it is not killed and can launch later."""
        orchestrator = Orchestrator(paper_cluster())
        scheduler = BinpackScheduler()

        # An honest pod that under-declares (1 MiB declared, 90 MiB
        # used) fills sgx-worker-0 invisibly... except enforcement is
        # on by default here, so use a pod that declares honestly but
        # whose twin's placement races it.  Simpler: two pods that each
        # *use* 60 MiB but declare 1 MiB, limits off.
        orchestrator = Orchestrator(
            paper_cluster(
                enforce_epc_limits=False, epc_allow_overcommit=False
            )
        )
        for index in range(3):
            orchestrator.submit(
                make_pod_spec(
                    f"liar-{index}",
                    duration_seconds=100.0,
                    declared_epc_bytes=mib(1),
                    actual_epc_bytes=mib(60),
                ),
                now=0.0,
            )
        result = orchestrator.scheduling_pass(scheduler, now=1.0)
        # Declared 1 MiB each: the scheduler packs all three onto one
        # node, but only one 60 MiB enclave fits physically; the others
        # are requeued, not killed.
        assert len(result.launched) == 1
        assert len(result.requeued) == 2
        assert result.killed == []
        for pod in result.requeued:
            assert pod.phase is PodPhase.PENDING
            assert pod in orchestrator.queue

    def test_requeued_pod_keeps_fcfs_priority(self):
        """Regression: a requeued pod used to be pushed to the queue
        tail, so the oldest pod could starve behind younger ones.  It
        must be reconsidered *before* any younger pending pod."""
        orchestrator = Orchestrator(
            paper_cluster(
                enforce_epc_limits=False,
                epc_allow_overcommit=False,
                sgx_workers=1,
            )
        )
        scheduler = BinpackScheduler()
        old = orchestrator.submit(
            make_pod_spec(
                "old-liar",
                duration_seconds=100.0,
                declared_epc_bytes=mib(1),
                actual_epc_bytes=mib(60),
            ),
            now=0.0,
        )
        twin = orchestrator.submit(
            make_pod_spec(
                "twin-liar",
                duration_seconds=100.0,
                declared_epc_bytes=mib(1),
                actual_epc_bytes=mib(60),
            ),
            now=0.0,
        )
        first = orchestrator.scheduling_pass(scheduler, now=1.0)
        assert [p for p, _ in first.launched] == [old]
        assert first.requeued == [twin]
        # A younger pod arrives while the twin waits requeued.
        young = orchestrator.submit(
            make_pod_spec(
                "young",
                duration_seconds=100.0,
                declared_epc_bytes=mib(1),
                actual_epc_bytes=mib(60),
            ),
            now=5.0,
        )
        assert orchestrator.queue.snapshot(now=6.0) == [twin, young]
        orchestrator.start_pod(old, now=1.2)
        orchestrator.complete_pod(old, now=50.0)
        second = orchestrator.scheduling_pass(scheduler, now=51.0)
        # The freed node goes to the older (requeued) pod, not the
        # younger one.
        assert [p for p, _ in second.launched] == [twin]
        assert young in second.requeued or young in second.deferred

    def test_requeue_backoff_hides_pod_until_ready(self):
        orchestrator = Orchestrator(
            paper_cluster(
                enforce_epc_limits=False,
                epc_allow_overcommit=False,
                sgx_workers=1,
            ),
            requeue_backoff_seconds=60.0,
        )
        scheduler = BinpackScheduler()
        pods = [
            orchestrator.submit(
                make_pod_spec(
                    f"liar-{index}",
                    duration_seconds=100.0,
                    declared_epc_bytes=mib(1),
                    actual_epc_bytes=mib(60),
                ),
                now=0.0,
            )
            for index in range(2)
        ]
        first = orchestrator.scheduling_pass(scheduler, now=1.0)
        assert len(first.requeued) == 1
        requeued = first.requeued[0]
        # Hidden while backing off (even though capacity has freed)...
        launched_pod = first.launched[0][0]
        orchestrator.start_pod(launched_pod, now=1.2)
        orchestrator.complete_pod(launched_pod, now=10.0)
        mid = orchestrator.scheduling_pass(scheduler, now=20.0)
        assert mid.launched == []
        assert requeued in orchestrator.queue
        assert orchestrator.queue.ready_count(20.0) == 0
        assert orchestrator.queue.next_ready_at(20.0) == pytest.approx(61.0)
        # ...eligible again once the backoff expires.
        late = orchestrator.scheduling_pass(scheduler, now=61.0)
        assert [p for p, _ in late.launched] == [requeued]
        assert {p.name for p in pods} == {
            launched_pod.name, requeued.name
        }

    def test_requeued_pod_launches_when_space_frees(self):
        orchestrator = Orchestrator(
            paper_cluster(
                enforce_epc_limits=False,
                epc_allow_overcommit=False,
                sgx_workers=1,
            )
        )
        scheduler = BinpackScheduler()
        specs = [
            make_pod_spec(
                f"liar-{index}",
                duration_seconds=100.0,
                declared_epc_bytes=mib(1),
                actual_epc_bytes=mib(60),
            )
            for index in range(2)
        ]
        pods = [orchestrator.submit(s, now=0.0) for s in specs]
        first_pass = orchestrator.scheduling_pass(scheduler, now=1.0)
        assert len(first_pass.launched) == 1
        launched_pod = first_pass.launched[0][0]
        orchestrator.start_pod(launched_pod, now=1.2)
        orchestrator.complete_pod(launched_pod, now=50.0)
        second_pass = orchestrator.scheduling_pass(scheduler, now=51.0)
        assert len(second_pass.launched) == 1
        assert {p.name for p in pods} == {
            launched_pod.name,
            second_pass.launched[0][0].name,
        }
