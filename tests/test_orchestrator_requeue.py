"""Retryable launch failures: unbind and requeue semantics."""

import pytest

from repro.cluster.topology import paper_cluster
from repro.errors import OrchestrationError
from repro.orchestrator.api import PodPhase, make_pod_spec
from repro.orchestrator.controller import Orchestrator
from repro.orchestrator.pod import Pod
from repro.orchestrator.api import PodSpec
from repro.scheduler.binpack import BinpackScheduler
from repro.units import mib


class TestMarkUnbound:
    def test_unbind_resets_binding_state(self):
        pod = Pod(PodSpec(name="p"), submitted_at=0.0)
        pod.mark_bound("node", 1.0)
        pod.mark_unbound()
        assert pod.phase is PodPhase.PENDING
        assert pod.node_name is None
        assert pod.bound_at is None

    def test_unbind_requires_bound(self):
        pod = Pod(PodSpec(name="p"), submitted_at=0.0)
        with pytest.raises(OrchestrationError):
            pod.mark_unbound()

    def test_rebind_after_unbind(self):
        pod = Pod(PodSpec(name="p"), submitted_at=0.0)
        pod.mark_bound("a", 1.0)
        pod.mark_unbound()
        pod.mark_bound("b", 2.0)
        assert pod.node_name == "b"


class TestControllerRequeue:
    def test_epc_race_requeues_instead_of_killing(self):
        """A pod whose enclave creation finds the EPC full goes back to
        the queue; it is not killed and can launch later."""
        orchestrator = Orchestrator(paper_cluster())
        scheduler = BinpackScheduler()

        # An honest pod that under-declares (1 MiB declared, 90 MiB
        # used) fills sgx-worker-0 invisibly... except enforcement is
        # on by default here, so use a pod that declares honestly but
        # whose twin's placement races it.  Simpler: two pods that each
        # *use* 60 MiB but declare 1 MiB, limits off.
        orchestrator = Orchestrator(
            paper_cluster(
                enforce_epc_limits=False, epc_allow_overcommit=False
            )
        )
        for index in range(3):
            orchestrator.submit(
                make_pod_spec(
                    f"liar-{index}",
                    duration_seconds=100.0,
                    declared_epc_bytes=mib(1),
                    actual_epc_bytes=mib(60),
                ),
                now=0.0,
            )
        result = orchestrator.scheduling_pass(scheduler, now=1.0)
        # Declared 1 MiB each: the scheduler packs all three onto one
        # node, but only one 60 MiB enclave fits physically; the others
        # are requeued, not killed.
        assert len(result.launched) == 1
        assert len(result.requeued) == 2
        assert result.killed == []
        for pod in result.requeued:
            assert pod.phase is PodPhase.PENDING
            assert pod in orchestrator.queue

    def test_requeued_pod_launches_when_space_frees(self):
        orchestrator = Orchestrator(
            paper_cluster(
                enforce_epc_limits=False,
                epc_allow_overcommit=False,
                sgx_workers=1,
            )
        )
        scheduler = BinpackScheduler()
        specs = [
            make_pod_spec(
                f"liar-{index}",
                duration_seconds=100.0,
                declared_epc_bytes=mib(1),
                actual_epc_bytes=mib(60),
            )
            for index in range(2)
        ]
        pods = [orchestrator.submit(s, now=0.0) for s in specs]
        first_pass = orchestrator.scheduling_pass(scheduler, now=1.0)
        assert len(first_pass.launched) == 1
        launched_pod = first_pass.launched[0][0]
        orchestrator.start_pod(launched_pod, now=1.2)
        orchestrator.complete_pod(launched_pod, now=50.0)
        second_pass = orchestrator.scheduling_pass(scheduler, now=51.0)
        assert len(second_pass.launched) == 1
        assert {p.name for p in pods} == {
            launched_pod.name,
            second_pass.launched[0][0].name,
        }
