"""Orchestrator facade: submission, scheduling passes, lifecycle."""

import pytest

from repro.monitoring.probe import MEASUREMENT_EPC
from repro.orchestrator.api import PodPhase, make_pod_spec
from repro.orchestrator.controller import PROBE_DAEMONSET, Orchestrator
from repro.scheduler.binpack import BinpackScheduler
from repro.units import gib, mib, pages


@pytest.fixture
def scheduler():
    return BinpackScheduler()


class TestWiring:
    def test_kubelets_per_node(self, orchestrator):
        assert set(orchestrator.kubelets) == {
            "worker-0",
            "worker-1",
            "sgx-worker-0",
            "sgx-worker-1",
        }

    def test_device_plugins_registered(self, orchestrator):
        assert (
            orchestrator.kubelets["sgx-worker-0"].advertised_epc_pages()
            == 23_936
        )
        assert orchestrator.kubelets["worker-0"].advertised_epc_pages() == 0

    def test_probe_daemonset_covers_sgx_nodes(self, orchestrator):
        probes = orchestrator.daemonsets.payloads(PROBE_DAEMONSET)
        assert len(probes) == 2
        assert {p.node_name for p in probes} == {
            "sgx-worker-0",
            "sgx-worker-1",
        }


class TestSubmissionAndScheduling:
    def test_submit_queues_pod(self, orchestrator, sgx_pod_spec):
        pod = orchestrator.submit(sgx_pod_spec, now=0.0)
        assert pod.phase is PodPhase.PENDING
        assert len(orchestrator.queue) == 1

    def test_scheduling_pass_places_sgx_pod_on_sgx_node(
        self, orchestrator, sgx_pod_spec, scheduler
    ):
        pod = orchestrator.submit(sgx_pod_spec, now=0.0)
        result = orchestrator.scheduling_pass(scheduler, now=1.0)
        assert [p.name for p, _ in result.launched] == [pod.name]
        assert pod.node_name.startswith("sgx-worker")
        assert len(orchestrator.queue) == 0

    def test_standard_pod_avoids_sgx_nodes(
        self, orchestrator, standard_pod_spec, scheduler
    ):
        pod = orchestrator.submit(standard_pod_spec, now=0.0)
        orchestrator.scheduling_pass(scheduler, now=1.0)
        assert pod.node_name.startswith("worker")

    def test_unschedulable_pod_rejected(self, orchestrator, scheduler):
        spec = make_pod_spec(
            "huge", duration_seconds=10.0, declared_memory_bytes=gib(100)
        )
        pod = orchestrator.submit(spec, now=0.0)
        result = orchestrator.scheduling_pass(scheduler, now=1.0)
        assert result.rejected == [pod]
        assert pod.phase is PodPhase.FAILED
        assert "Unschedulable" in pod.failure_reason

    def test_deferred_pod_stays_queued(self, orchestrator, scheduler):
        # Fill both SGX nodes, then submit one more SGX pod.
        for index in range(2):
            spec = make_pod_spec(
                f"big-{index}",
                duration_seconds=100.0,
                declared_epc_bytes=mib(93),
            )
            orchestrator.submit(spec, now=0.0)
        late = orchestrator.submit(
            make_pod_spec(
                "late", duration_seconds=10.0, declared_epc_bytes=mib(50)
            ),
            now=0.0,
        )
        result = orchestrator.scheduling_pass(scheduler, now=1.0)
        assert len(result.launched) == 2
        assert result.deferred == [late]
        assert late in orchestrator.queue

    def test_empty_queue_pass_is_noop(self, orchestrator, scheduler):
        result = orchestrator.scheduling_pass(scheduler, now=1.0)
        assert result.launched == []

    def test_killed_at_launch_with_enforcement(self, scheduler):
        from repro.cluster.topology import paper_cluster

        orchestrator = Orchestrator(paper_cluster(enforce_epc_limits=True))
        spec = make_pod_spec(
            "liar",
            duration_seconds=10.0,
            declared_epc_bytes=mib(1),
            actual_epc_bytes=mib(20),
        )
        pod = orchestrator.submit(spec, now=0.0)
        result = orchestrator.scheduling_pass(scheduler, now=1.0)
        assert result.killed == [pod]
        assert pod.phase is PodPhase.FAILED


class TestLifecycle:
    def run_one(self, orchestrator, scheduler, spec):
        pod = orchestrator.submit(spec, now=0.0)
        result = orchestrator.scheduling_pass(scheduler, now=1.0)
        assert result.launched
        return pod

    def test_complete_frees_node(
        self, orchestrator, scheduler, sgx_pod_spec
    ):
        pod = self.run_one(orchestrator, scheduler, sgx_pod_spec)
        orchestrator.start_pod(pod, now=1.5)
        node = orchestrator.cluster.node(pod.node_name)
        assert node.used_epc_pages() == pages(mib(10))
        orchestrator.complete_pod(pod, now=61.5)
        assert pod.phase is PodPhase.SUCCEEDED
        assert node.used_epc_pages() == 0

    def test_kill_running_pod(self, orchestrator, scheduler, sgx_pod_spec):
        pod = self.run_one(orchestrator, scheduler, sgx_pod_spec)
        orchestrator.start_pod(pod, now=1.5)
        orchestrator.kill_pod(pod, now=2.0, reason="preempted")
        assert pod.phase is PodPhase.FAILED
        node = orchestrator.cluster.node(pod.node_name)
        assert node.used_epc_pages() == 0

    def test_kill_queued_pod(self, orchestrator, sgx_pod_spec):
        pod = orchestrator.submit(sgx_pod_spec, now=0.0)
        orchestrator.kill_pod(pod, now=1.0, reason="cancelled")
        assert len(orchestrator.queue) == 0
        assert pod.phase is PodPhase.FAILED


class TestMetricsPath:
    def test_collect_metrics_feeds_probe_data(
        self, orchestrator, scheduler, sgx_pod_spec
    ):
        pod = orchestrator.submit(sgx_pod_spec, now=0.0)
        orchestrator.scheduling_pass(scheduler, now=1.0)
        orchestrator.start_pod(pod, now=1.5)
        written = orchestrator.collect_metrics(now=2.0)
        assert written > 0
        point = orchestrator.db.latest(
            MEASUREMENT_EPC, tags={"pod_name": pod.name}
        )
        assert point is not None
        assert point.value == pages(mib(10))

    def test_measured_usage_informs_next_pass(self):
        # A pod declaring little but using much: after metrics arrive,
        # the scheduler sees the *measured* usage and defers a pod that
        # would otherwise fit on paper.  Enforcement is off, as on a
        # stock driver, so the liar survives launch.
        from repro.cluster.topology import paper_cluster

        orchestrator = Orchestrator(paper_cluster(enforce_epc_limits=False))
        liar_spec = make_pod_spec(
            "liar",
            duration_seconds=100.0,
            declared_epc_bytes=mib(1),
            actual_epc_bytes=mib(80),
        )
        scheduler = BinpackScheduler()
        liar = orchestrator.submit(liar_spec, now=0.0)
        orchestrator.scheduling_pass(scheduler, now=1.0)
        orchestrator.start_pod(liar, now=1.2)
        orchestrator.collect_metrics(now=2.0)

        # Both SGX nodes have 93.5 MiB; the liar occupies 80 MiB of one.
        # A 90 MiB pod fits the other node; a second 90 MiB pod must wait
        # because measured usage exposes the liar.
        for index in range(2):
            orchestrator.submit(
                make_pod_spec(
                    f"honest-{index}",
                    duration_seconds=10.0,
                    declared_epc_bytes=mib(90),
                ),
                now=2.0,
            )
        result = orchestrator.scheduling_pass(scheduler, now=3.0)
        assert len(result.launched) == 1
        assert len(result.deferred) == 1

    def test_pods_by_phase(self, orchestrator, scheduler, sgx_pod_spec):
        pod = orchestrator.submit(sgx_pod_spec, now=0.0)
        grouped = orchestrator.pods_by_phase()
        assert grouped == {"Pending": [pod]}

    def test_pending_epc_pages(self, orchestrator, sgx_pod_spec):
        orchestrator.submit(sgx_pod_spec, now=0.0)
        assert orchestrator.pending_epc_pages() == pages(mib(10))
