"""Property-based tests: the InfluxQL executor against a Python oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitoring.influxql import execute_query, parse_query
from repro.monitoring.tsdb import TimeSeriesDatabase

sample_strategy = st.lists(
    st.tuples(
        st.sampled_from(["pod-a", "pod-b", "pod-c"]),  # pod
        st.sampled_from(["node-1", "node-2"]),  # node
        st.floats(min_value=0.0, max_value=100.0),  # time
        st.floats(min_value=0.0, max_value=1000.0),  # value
    ),
    max_size=60,
)


def populate(samples) -> TimeSeriesDatabase:
    db = TimeSeriesDatabase()
    for pod, node, time, value in samples:
        db.write(
            "sgx/epc",
            value=value,
            time=time,
            tags={"pod_name": pod, "nodename": node},
        )
    return db


LISTING_1 = (
    "SELECT SUM(epc) AS epc FROM "
    '(SELECT MAX(value) AS epc FROM "sgx/epc" '
    "WHERE value <> 0 AND time >= now() - 25s "
    "GROUP BY pod_name, nodename) GROUP BY nodename"
)


def oracle_listing_1(samples, now):
    """Straight-line Python re-implementation of Listing 1."""
    per_pod = {}
    for pod, node, time, value in samples:
        if value != 0 and time >= now - 25.0 and time <= now:
            key = (node, pod)
            per_pod[key] = max(per_pod.get(key, 0.0), value)
    per_node = {}
    for (node, _pod), peak in per_pod.items():
        per_node[node] = per_node.get(node, 0.0) + peak
    return per_node


class TestListing1Properties:
    @given(samples=sample_strategy, now=st.floats(0.0, 120.0))
    @settings(max_examples=150)
    def test_matches_python_oracle(self, samples, now):
        db = populate(samples)
        rows = execute_query(LISTING_1, db, now=now)
        got = {row["nodename"]: row["epc"] for row in rows}
        expected = oracle_listing_1(samples, now)
        # Sums may differ in the last ulp depending on addition order.
        assert got.keys() == expected.keys()
        for node, value in expected.items():
            assert got[node] == pytest.approx(value, rel=1e-12)

    @given(samples=sample_strategy)
    def test_inner_max_never_exceeds_global_max(self, samples):
        db = populate(samples)
        rows = execute_query(
            'SELECT MAX(value) AS peak FROM "sgx/epc" '
            "WHERE time >= now() - 1000s GROUP BY pod_name",
            db,
            now=100.0,
        )
        if rows:
            global_max = max(value for _, _, _, value in samples)
            assert all(row["peak"] <= global_max for row in rows)

    @given(samples=sample_strategy)
    def test_sum_equals_mean_times_count(self, samples):
        db = populate(samples)
        rows = execute_query(
            'SELECT SUM(value) AS s, MEAN(value) AS m, COUNT(value) AS c '
            'FROM "sgx/epc" WHERE time >= now() - 1000s',
            db,
            now=100.0,
        )
        for row in rows:
            if row.get("c"):
                assert row["s"] == row["m"] * row["c"] or abs(
                    row["s"] - row["m"] * row["c"]
                ) < 1e-6 * max(1.0, abs(row["s"]))


class TestParserProperties:
    @given(window=st.integers(min_value=1, max_value=86_400))
    def test_any_window_parses(self, window):
        query = parse_query(
            f"SELECT MAX(value) FROM m WHERE time >= now() - {window}s"
        )
        assert query.conditions[0].literal.offset_seconds == -float(window)

    @given(
        tags=st.lists(
            st.sampled_from(["a", "b", "c", "pod_name", "nodename"]),
            min_size=1,
            max_size=5,
            unique=True,
        )
    )
    def test_group_by_round_trips(self, tags):
        query = parse_query(
            "SELECT MAX(value) FROM m GROUP BY " + ", ".join(tags)
        )
        assert list(query.group_by) == tags
