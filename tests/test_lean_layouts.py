"""Object-layout regressions for the hot-path rebuild.

The lean layouts (``__slots__`` on pods, records, node views and TSDB
points) must not change any observable semantics: pickling of the
public API types keeps working, Pod keeps identity equality/hash, and
NodeView keeps generated field-wise equality while staying unhashable.
"""

import pickle

import pytest

from repro.api import Scenario
from repro.cluster.resources import ResourceVector
from repro.monitoring.tsdb import Point
from repro.orchestrator.api import make_pod_spec
from repro.orchestrator.pod import Pod
from repro.scheduler.base import NodeView
from repro.simulation.engine import SimulationEngine

TINY = dict(trace="borg-synth:jobs=20", sgx_fraction=0.5, seed=3)


class TestPickleRoundTrips:
    def test_pod_spec_round_trips(self):
        spec = make_pod_spec(
            "job", duration_seconds=30.0, declared_epc_bytes=8 << 20
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.resources.requests == spec.resources.requests

    def test_scenario_round_trips(self):
        scenario = Scenario(scheduler="spread", **TINY)
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone == scenario

    def test_run_result_round_trips_with_identical_signature(self):
        result = Scenario(**TINY).run()
        clone = pickle.loads(pickle.dumps(result))
        assert clone.signature() == result.signature()
        assert clone.to_row() == result.to_row()

    def test_point_round_trips(self):
        point = Point.make(1.5, 42.0, {"nodename": "n", "pod_name": "p"})
        clone = pickle.loads(pickle.dumps(point))
        assert clone == point
        assert hash(clone) == hash(point)
        assert clone.tags == point.tags


class TestPodIdentitySemantics:
    def test_equality_is_identity(self):
        spec = make_pod_spec("twin", duration_seconds=10.0)
        first, second = Pod(spec, 0.0), Pod(spec, 0.0)
        assert first == first
        assert first != second  # same spec, distinct pods

    def test_hash_is_identity_and_set_usable(self):
        spec = make_pod_spec("twin", duration_seconds=10.0)
        pods = {Pod(spec, 0.0) for _ in range(3)}
        assert len(pods) == 3

    def test_slots_prevent_stray_attributes(self):
        pod = Pod(make_pod_spec("p", duration_seconds=1.0), 0.0)
        with pytest.raises(AttributeError):
            pod.scratch = 1


class TestNodeViewSemantics:
    def make_view(self):
        return NodeView(
            name="n",
            sgx_capable=True,
            capacity=ResourceVector(1000, 2000, 30),
            used=ResourceVector(100, 200, 3),
        )

    def test_equality_is_field_wise(self):
        assert self.make_view() == self.make_view()
        other = self.make_view()
        other.used = ResourceVector(101, 200, 3)
        assert self.make_view() != other

    def test_stays_unhashable(self):
        with pytest.raises(TypeError):
            hash(self.make_view())

    def test_slots_prevent_stray_attributes(self):
        with pytest.raises(AttributeError):
            self.make_view().scratch = 1


class TestRescheduleFusion:
    """engine.reschedule_in == handle.cancel() + schedule_in, exactly."""

    def test_matches_unfused_pair(self):
        fused, unfused = SimulationEngine(), SimulationEngine()
        noop = lambda: None  # noqa: E731
        fh = fused.schedule_in(5.0, noop)
        uh = unfused.schedule_in(5.0, noop)
        fh2 = fused.reschedule_in(fh, 7.0, noop)
        uh.cancel()
        uh2 = unfused.schedule_in(7.0, noop)
        assert (fh2.time, fh2.seq) == (uh2.time, uh2.seq)
        assert fh.cancelled and uh.cancelled
        assert fused.pending_events == unfused.pending_events == 1

    def test_none_and_fired_handles_count_as_fresh_schedules(self):
        engine = SimulationEngine()
        fired = []
        handle = engine.reschedule_in(None, 1.0, lambda: fired.append(1))
        engine.run(until=2.0)
        assert fired == [1]
        # The fired handle is inert: rescheduling it must not disturb
        # the pending count the way cancelling a live event would.
        engine.reschedule_in(handle, 1.0, lambda: None)
        assert engine.pending_events == 1

    def test_negative_delay_rejected(self):
        from repro.errors import SimulationError

        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.reschedule_in(None, -1.0, lambda: None)

    def test_compaction_triggers_through_fused_path(self):
        engine = SimulationEngine()
        handles = [
            engine.schedule_in(float(i), lambda: None) for i in range(64)
        ]
        for handle in handles[:40]:
            engine.reschedule_in(handle, 100.0, lambda: None)
        # 40 cancels against a >=32-entry heap must have compacted at
        # least once: the heap never holds >2x the live events.
        assert len(engine._queue) <= 2 * engine.pending_events
        assert engine.pending_events == 64
