"""InfluxQL subset: lexer, parser, executor — including Listing 1."""

import pytest

from repro.monitoring.influxql import (
    InfluxQLError,
    SelectQuery,
    TimeExpr,
    execute_query,
    parse_query,
    tokenize,
)
from repro.monitoring.tsdb import TimeSeriesDatabase

#: The paper's Listing 1, verbatim.
LISTING_1 = """
SELECT SUM(epc) AS epc FROM
(SELECT MAX(value) AS epc FROM "sgx/epc"
WHERE value <> 0 AND time >= now() - 25s
GROUP BY pod_name, nodename
)
GROUP BY nodename
"""


class TestLexer:
    def test_keywords_case_insensitive(self):
        kinds = [t.kind for t in tokenize("select from where")]
        assert kinds == ["KEYWORD", "KEYWORD", "KEYWORD"]

    def test_quoted_measurement_is_ident(self):
        (token,) = tokenize('"sgx/epc"')
        assert token.kind == "IDENT"
        assert token.text == "sgx/epc"

    def test_single_quotes_are_strings(self):
        (token,) = tokenize("'hello'")
        assert token.kind == "STRING"

    def test_operators(self):
        kinds = {t.text for t in tokenize("= <> != <= >= < >")}
        assert kinds == {"=", "<>", "!=", "<=", ">=", "<", ">"}

    def test_unknown_character_rejected(self):
        with pytest.raises(InfluxQLError):
            tokenize("SELECT @")


class TestParser:
    def test_simple_select(self):
        query = parse_query("SELECT value FROM m")
        assert query.source == "m"
        assert query.items[0].column == "value"
        assert query.items[0].aggregate is None

    def test_aggregate_with_alias(self):
        query = parse_query("SELECT MAX(value) AS peak FROM m")
        item = query.items[0]
        assert item.aggregate == "MAX"
        assert item.column == "value"
        assert item.output_name == "peak"

    def test_where_now_minus_duration(self):
        query = parse_query(
            "SELECT value FROM m WHERE time >= now() - 25s"
        )
        (cond,) = query.conditions
        assert isinstance(cond.literal, TimeExpr)
        assert cond.literal.offset_seconds == -25.0

    def test_duration_units(self):
        query = parse_query("SELECT value FROM m WHERE time >= now() - 5m")
        assert query.conditions[0].literal.offset_seconds == -300.0

    def test_group_by_list(self):
        query = parse_query(
            "SELECT MAX(value) FROM m GROUP BY pod_name, nodename"
        )
        assert query.group_by == ("pod_name", "nodename")

    def test_subquery_source(self):
        query = parse_query(
            "SELECT SUM(x) FROM (SELECT MAX(value) AS x FROM m)"
        )
        assert isinstance(query.source, SelectQuery)

    def test_listing_1_parses(self):
        query = parse_query(LISTING_1)
        assert query.group_by == ("nodename",)
        inner = query.source
        assert isinstance(inner, SelectQuery)
        assert inner.source == "sgx/epc"
        assert len(inner.conditions) == 2

    def test_trailing_garbage_rejected(self):
        with pytest.raises(InfluxQLError):
            parse_query("SELECT value FROM m extra")

    def test_missing_from_rejected(self):
        with pytest.raises(InfluxQLError):
            parse_query("SELECT value")

    def test_star_projection(self):
        query = parse_query("SELECT * FROM m")
        assert query.items[0].column == "*"


class TestExecutor:
    @pytest.fixture
    def populated(self, db) -> TimeSeriesDatabase:
        # Two pods across two nodes, samples at t=80..100.
        samples = [
            ("pod-a", "node-1", 80.0, 100.0),
            ("pod-a", "node-1", 90.0, 120.0),
            ("pod-b", "node-1", 95.0, 50.0),
            ("pod-c", "node-2", 99.0, 70.0),
            ("pod-c", "node-2", 60.0, 999.0),  # outside a 25 s window
        ]
        for pod, node, t, value in samples:
            db.write(
                "sgx/epc",
                value=value,
                time=t,
                tags={"pod_name": pod, "nodename": node},
            )
        return db

    def test_listing_1_per_node_sums(self, populated):
        rows = execute_query(LISTING_1, populated, now=100.0)
        by_node = {row["nodename"]: row["epc"] for row in rows}
        # node-1: max(pod-a)=120 + max(pod-b)=50; node-2: max(pod-c)=70
        assert by_node == {"node-1": 170.0, "node-2": 70.0}

    def test_window_excludes_old_samples(self, populated):
        rows = execute_query(LISTING_1, populated, now=100.0)
        node2 = next(r for r in rows if r["nodename"] == "node-2")
        assert node2["epc"] == 70.0  # the 999 sample at t=60 is out

    def test_value_filter(self, db):
        db.write("m", value=0.0, time=1.0, tags={"pod_name": "a"})
        db.write("m", value=5.0, time=2.0, tags={"pod_name": "a"})
        rows = execute_query(
            'SELECT MAX(value) AS v FROM m WHERE value <> 0 '
            "GROUP BY pod_name",
            db,
            now=10.0,
        )
        assert rows[0]["v"] == 5.0

    def test_projection_without_aggregates(self, db):
        db.write("m", value=3.0, time=1.0, tags={"pod_name": "a"})
        rows = execute_query("SELECT value FROM m", db, now=10.0)
        assert rows == [{"time": 1.0, "value": 3.0}]

    def test_aggregates(self, db):
        for value in (1.0, 2.0, 3.0):
            db.write("m", value=value, time=value)
        for agg, expected in [
            ("SUM", 6.0),
            ("MIN", 1.0),
            ("MAX", 3.0),
            ("MEAN", 2.0),
            ("COUNT", 3.0),
            ("FIRST", 1.0),
            ("LAST", 3.0),
        ]:
            rows = execute_query(
                f"SELECT {agg}(value) AS x FROM m", db, now=10.0
            )
            assert rows[0]["x"] == expected, agg

    def test_empty_result_no_groups(self, db):
        rows = execute_query(
            "SELECT MAX(value) AS x FROM m GROUP BY pod", db, now=1.0
        )
        assert rows == []

    def test_group_time_is_max_member_time(self, db):
        db.write("m", value=1.0, time=5.0, tags={"g": "x"})
        db.write("m", value=2.0, time=9.0, tags={"g": "x"})
        rows = execute_query(
            "SELECT MAX(value) AS v FROM m GROUP BY g", db, now=10.0
        )
        assert rows[0]["time"] == 9.0

    def test_string_equality_filter(self, db):
        db.write("m", value=1.0, time=1.0, tags={"pod_name": "a"})
        db.write("m", value=2.0, time=2.0, tags={"pod_name": "b"})
        rows = execute_query(
            "SELECT MAX(value) AS v FROM m WHERE pod_name = 'b'",
            db,
            now=10.0,
        )
        assert rows[0]["v"] == 2.0

    def test_missing_column_in_where_filters_row(self, db):
        db.write("m", value=1.0, time=1.0)  # no tags at all
        rows = execute_query(
            "SELECT MAX(value) AS v FROM m WHERE pod_name = 'a'",
            db,
            now=10.0,
        )
        assert rows == []

    def test_unknown_aggregate_rejected(self, db):
        db.write("m", value=1.0, time=1.0)
        # FOO( parses as an identifier followed by junk.
        with pytest.raises(InfluxQLError):
            execute_query("SELECT FOO(value) FROM m", db, now=1.0)


class TestOrderAndLimit:
    def test_order_by_time_desc(self, db):
        for t in (3.0, 1.0, 2.0):
            db.write("m", value=t, time=t)
        rows = execute_query(
            "SELECT value FROM m ORDER BY time DESC", db, now=10.0
        )
        assert [r["time"] for r in rows] == [3.0, 2.0, 1.0]

    def test_order_by_time_asc_explicit(self, db):
        for t in (3.0, 1.0, 2.0):
            db.write("m", value=t, time=t)
        rows = execute_query(
            "SELECT value FROM m ORDER BY time ASC", db, now=10.0
        )
        assert [r["time"] for r in rows] == [1.0, 2.0, 3.0]

    def test_limit_truncates(self, db):
        for t in (1.0, 2.0, 3.0):
            db.write("m", value=t, time=t)
        rows = execute_query(
            "SELECT value FROM m ORDER BY time DESC LIMIT 2", db, now=10.0
        )
        assert len(rows) == 2
        assert rows[0]["time"] == 3.0

    def test_limit_zero(self, db):
        db.write("m", value=1.0, time=1.0)
        rows = execute_query("SELECT value FROM m LIMIT 0", db, now=10.0)
        assert rows == []

    def test_limit_on_grouped_query(self, db):
        for pod in ("a", "b", "c"):
            db.write("m", value=1.0, time=1.0, tags={"pod_name": pod})
        rows = execute_query(
            "SELECT MAX(value) AS v FROM m GROUP BY pod_name LIMIT 2",
            db,
            now=10.0,
        )
        assert len(rows) == 2

    def test_order_by_non_time_rejected(self, db):
        with pytest.raises(InfluxQLError, match="ORDER BY time"):
            parse_query("SELECT value FROM m ORDER BY value")


class TestShowMeasurements:
    def test_lists_measurements(self, db):
        db.write("b", value=1.0, time=0.0)
        db.write("a", value=1.0, time=0.0)
        rows = execute_query("SHOW MEASUREMENTS", db, now=0.0)
        assert rows == [{"name": "a"}, {"name": "b"}]

    def test_empty_database(self, db):
        assert execute_query("SHOW MEASUREMENTS", db, now=0.0) == []

    def test_trailing_garbage_rejected(self):
        with pytest.raises(InfluxQLError):
            parse_query("SHOW MEASUREMENTS extra")
