"""EPC contention rebalancer: detection, victim choice, relief."""

import pytest

from repro.cluster.topology import paper_cluster
from repro.orchestrator.api import make_pod_spec
from repro.orchestrator.controller import Orchestrator
from repro.scheduler.binpack import BinpackScheduler
from repro.scheduler.rebalancer import EpcRebalancer
from repro.units import mib


def overcommitted_orchestrator():
    """Node sgx-worker-0 over-committed by under-declaring pods.

    Three pods each declare 1 MiB but use 40 MiB; the scheduler packs
    them onto one node (declared view), physically over-committing its
    93.5 MiB EPC (120 > 93.5) while sgx-worker-1 idles.
    """
    orchestrator = Orchestrator(
        paper_cluster(enforce_epc_limits=False, epc_allow_overcommit=True)
    )
    scheduler = BinpackScheduler()
    pods = []
    for index in range(3):
        pods.append(
            orchestrator.submit(
                make_pod_spec(
                    f"liar-{index}",
                    duration_seconds=600.0,
                    declared_epc_bytes=mib(1),
                    actual_epc_bytes=mib(40),
                ),
                now=0.0,
            )
        )
    result = orchestrator.scheduling_pass(scheduler, now=1.0)
    assert len(result.launched) == 3
    for pod, _ in result.launched:
        orchestrator.start_pod(pod, now=1.5)
    return orchestrator, pods


class TestDetection:
    def test_overcommitted_node_detected(self):
        orchestrator, pods = overcommitted_orchestrator()
        rebalancer = EpcRebalancer(orchestrator)
        assert rebalancer.overcommitted_nodes() == [pods[0].node_name]

    def test_healthy_cluster_detects_nothing(self):
        orchestrator = Orchestrator(paper_cluster())
        assert EpcRebalancer(orchestrator).overcommitted_nodes() == []


class TestRebalancing:
    def test_relieves_overcommit_by_migrating(self):
        orchestrator, pods = overcommitted_orchestrator()
        source = pods[0].node_name
        rebalancer = EpcRebalancer(orchestrator)
        report = rebalancer.rebalance(now=100.0)
        assert report.actions, "expected at least one migration"
        assert rebalancer.overcommitted_nodes() == []
        assert report.unrelieved_nodes == []
        for action in report.actions:
            assert action.source_node == source
            assert action.target_node != source
            assert action.downtime_seconds > 0.0

    def test_migrated_pods_keep_running(self):
        orchestrator, pods = overcommitted_orchestrator()
        EpcRebalancer(orchestrator).rebalance(now=100.0)
        assert all(p.phase.value == "Running" for p in pods)
        for pod in pods:
            orchestrator.complete_pod(pod, now=700.0)

    def test_respects_migration_budget(self):
        orchestrator, _ = overcommitted_orchestrator()
        rebalancer = EpcRebalancer(orchestrator, max_migrations_per_pass=0)
        report = rebalancer.rebalance(now=100.0)
        assert report.actions == []
        assert report.unrelieved_nodes != []

    def test_no_target_means_unrelieved(self):
        # Only one SGX node: nowhere to migrate to.
        orchestrator = Orchestrator(
            paper_cluster(
                enforce_epc_limits=False,
                epc_allow_overcommit=True,
                sgx_workers=1,
            )
        )
        scheduler = BinpackScheduler()
        for index in range(3):
            pod = orchestrator.submit(
                make_pod_spec(
                    f"liar-{index}",
                    duration_seconds=600.0,
                    declared_epc_bytes=mib(1),
                    actual_epc_bytes=mib(40),
                ),
                now=0.0,
            )
        result = orchestrator.scheduling_pass(scheduler, now=1.0)
        for pod, _ in result.launched:
            orchestrator.start_pod(pod, now=1.5)
        report = EpcRebalancer(orchestrator).rebalance(now=100.0)
        assert report.actions == []
        assert report.unrelieved_nodes == ["sgx-worker-0"]

    def test_idempotent_after_relief(self):
        orchestrator, _ = overcommitted_orchestrator()
        rebalancer = EpcRebalancer(orchestrator)
        rebalancer.rebalance(now=100.0)
        second = rebalancer.rebalance(now=200.0)
        assert second.actions == []
