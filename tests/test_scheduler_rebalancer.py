"""EPC contention rebalancer: detection, victim choice, relief."""


from repro.cluster.topology import paper_cluster
from repro.errors import EpcExhaustedError
from repro.orchestrator.api import PodPhase, make_pod_spec
from repro.orchestrator.controller import Orchestrator
from repro.scheduler.binpack import BinpackScheduler
from repro.scheduler.rebalancer import EpcRebalancer
from repro.sgx.migration import MigrationManager
from repro.units import mib, pages


def overcommitted_orchestrator():
    """Node sgx-worker-0 over-committed by under-declaring pods.

    Three pods each declare 1 MiB but use 40 MiB; the scheduler packs
    them onto one node (declared view), physically over-committing its
    93.5 MiB EPC (120 > 93.5) while sgx-worker-1 idles.
    """
    orchestrator = Orchestrator(
        paper_cluster(enforce_epc_limits=False, epc_allow_overcommit=True)
    )
    scheduler = BinpackScheduler()
    pods = []
    for index in range(3):
        pods.append(
            orchestrator.submit(
                make_pod_spec(
                    f"liar-{index}",
                    duration_seconds=600.0,
                    declared_epc_bytes=mib(1),
                    actual_epc_bytes=mib(40),
                ),
                now=0.0,
            )
        )
    result = orchestrator.scheduling_pass(scheduler, now=1.0)
    assert len(result.launched) == 3
    for pod, _ in result.launched:
        orchestrator.start_pod(pod, now=1.5)
    return orchestrator, pods


class TestDetection:
    def test_overcommitted_node_detected(self):
        orchestrator, pods = overcommitted_orchestrator()
        rebalancer = EpcRebalancer(orchestrator)
        assert rebalancer.overcommitted_nodes() == [pods[0].node_name]

    def test_healthy_cluster_detects_nothing(self):
        orchestrator = Orchestrator(paper_cluster())
        assert EpcRebalancer(orchestrator).overcommitted_nodes() == []


class TestRebalancing:
    def test_relieves_overcommit_by_migrating(self):
        orchestrator, pods = overcommitted_orchestrator()
        source = pods[0].node_name
        rebalancer = EpcRebalancer(orchestrator)
        report = rebalancer.rebalance(now=100.0)
        assert report.actions, "expected at least one migration"
        assert rebalancer.overcommitted_nodes() == []
        assert report.unrelieved_nodes == []
        for action in report.actions:
            assert action.source_node == source
            assert action.target_node != source
            assert action.downtime_seconds > 0.0

    def test_migrated_pods_keep_running(self):
        orchestrator, pods = overcommitted_orchestrator()
        EpcRebalancer(orchestrator).rebalance(now=100.0)
        assert all(p.phase.value == "Running" for p in pods)
        for pod in pods:
            orchestrator.complete_pod(pod, now=700.0)

    def test_respects_migration_budget(self):
        orchestrator, _ = overcommitted_orchestrator()
        rebalancer = EpcRebalancer(orchestrator, max_migrations_per_pass=0)
        report = rebalancer.rebalance(now=100.0)
        assert report.actions == []
        assert report.unrelieved_nodes != []

    def test_no_target_means_unrelieved(self):
        # Only one SGX node: nowhere to migrate to.
        orchestrator = Orchestrator(
            paper_cluster(
                enforce_epc_limits=False,
                epc_allow_overcommit=True,
                sgx_workers=1,
            )
        )
        scheduler = BinpackScheduler()
        for index in range(3):
            pod = orchestrator.submit(
                make_pod_spec(
                    f"liar-{index}",
                    duration_seconds=600.0,
                    declared_epc_bytes=mib(1),
                    actual_epc_bytes=mib(40),
                ),
                now=0.0,
            )
        result = orchestrator.scheduling_pass(scheduler, now=1.0)
        for pod, _ in result.launched:
            orchestrator.start_pod(pod, now=1.5)
        report = EpcRebalancer(orchestrator).rebalance(now=100.0)
        assert report.actions == []
        assert report.unrelieved_nodes == ["sgx-worker-0"]

    def test_idempotent_after_relief(self):
        orchestrator, _ = overcommitted_orchestrator()
        rebalancer = EpcRebalancer(orchestrator)
        rebalancer.rebalance(now=100.0)
        second = rebalancer.rebalance(now=200.0)
        assert second.actions == []

    def test_exhausted_budget_stops_victim_scans(self, monkeypatch):
        """Regression: the budget was only honoured inside the victim
        loop — later over-committed nodes still ran their (driver-
        touching) victim scan with nothing left to spend."""
        orchestrator, _ = overcommitted_orchestrator()
        rebalancer = EpcRebalancer(orchestrator, max_migrations_per_pass=0)
        calls = []
        monkeypatch.setattr(
            EpcRebalancer,
            "_victims",
            lambda self, node_name: calls.append(node_name) or [],
        )
        report = rebalancer.rebalance(now=100.0)
        assert calls == []
        assert report.actions == []
        assert report.unrelieved_nodes != []


class TestFailedMigration:
    def test_failed_restore_resubmits_pod(self, monkeypatch):
        """Regression: a restore failure left the pod failed-and-gone
        (the checkpoint destroys the source enclave first) while the
        rebalancer silently continued.  The spec must be resubmitted."""
        orchestrator, pods = overcommitted_orchestrator()

        def exploding_restore(self, driver, pid, checkpoint, key, aesm):
            raise EpcExhaustedError(checkpoint.size_bytes // 4096, 0)

        monkeypatch.setattr(MigrationManager, "restore", exploding_restore)
        report = EpcRebalancer(orchestrator).rebalance(now=100.0)
        assert report.actions == []
        assert len(report.failed) >= 1
        by_name = {p.name: p for p in pods}
        for failure in report.failed:
            original = by_name[failure.pod_name]
            assert original.phase is PodPhase.FAILED
            replacement = failure.replacement
            assert replacement is not original
            assert replacement.spec is original.spec
            assert replacement in orchestrator.queue
            assert replacement.phase is PodPhase.PENDING
        # Nothing is silently lost: every submitted workload is either
        # still running or queued again.
        lost = [
            p
            for p in pods
            if p.phase is PodPhase.FAILED
            and p.name not in {f.pod_name for f in report.failed}
        ]
        assert lost == []

    def test_failure_without_checkpoint_leaves_pod_running(
        self, monkeypatch
    ):
        """A precondition failure (before the checkpoint) must not
        resubmit anything — the pod still runs on its source."""
        orchestrator, pods = overcommitted_orchestrator()
        from repro.errors import OrchestrationError
        from repro.orchestrator.controller import Orchestrator

        def refuse(self, pod, target, now):
            raise OrchestrationError("injected pre-checkpoint failure")

        monkeypatch.setattr(Orchestrator, "migrate_pod", refuse)
        report = EpcRebalancer(orchestrator).rebalance(now=100.0)
        assert report.actions == []
        assert report.failed == []
        assert all(p.phase is PodPhase.RUNNING for p in pods)


class TestMeasuredPagesFit:
    def test_grown_enclave_sized_by_driver_measurement(self):
        """Regression: the fit check sized moves by the declared
        workload pages; an SGX2 enclave grown via EAUG occupies more,
        and moving it by the stale size over-commits the target."""
        orchestrator = Orchestrator(
            paper_cluster(
                enforce_epc_limits=False,
                epc_allow_overcommit=True,
                sgx_version=2,
            )
        )
        scheduler = BinpackScheduler()
        # Steer by declared sizes: filler fills sgx-worker-0, the
        # grower and its neighbour land on sgx-worker-1.
        filler = orchestrator.submit(
            make_pod_spec(
                "filler", duration_seconds=600.0,
                declared_epc_bytes=mib(60),
            ),
            now=0.0,
        )
        grower = orchestrator.submit(
            make_pod_spec(
                "grower", duration_seconds=600.0,
                declared_epc_bytes=mib(34), actual_epc_bytes=mib(30),
            ),
            now=0.1,
        )
        neighbour = orchestrator.submit(
            make_pod_spec(
                "neighbour", duration_seconds=600.0,
                declared_epc_bytes=mib(34), actual_epc_bytes=mib(40),
            ),
            now=0.2,
        )
        result = orchestrator.scheduling_pass(scheduler, now=1.0)
        assert len(result.launched) == 3
        for pod, _ in result.launched:
            orchestrator.start_pod(pod, now=1.5)
        assert filler.node_name == "sgx-worker-0"
        assert grower.node_name == "sgx-worker-1"
        assert neighbour.node_name == "sgx-worker-1"
        # EAUG the grower past what sgx-worker-0's free pages can host.
        kubelet = orchestrator.kubelets["sgx-worker-1"]
        kubelet.grow_pod_epc(grower, pages(mib(50)))
        rebalancer = EpcRebalancer(orchestrator)
        assert rebalancer.overcommitted_nodes() == ["sgx-worker-1"]
        report = rebalancer.rebalance(now=100.0)
        # Neither enclave fits sgx-worker-0's 33.5 MiB of free pages
        # once sized by the driver's measurement: no bogus migration.
        assert report.actions == []
        assert report.failed == []
        assert report.unrelieved_nodes == ["sgx-worker-1"]
        target_epc = orchestrator.cluster.node("sgx-worker-0").epc
        assert target_epc is not None and not target_epc.overcommitted
