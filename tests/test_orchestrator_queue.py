"""FCFS pending queue semantics."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.errors import OrchestrationError
from repro.orchestrator.api import PodSpec, ResourceRequirements
from repro.orchestrator.pod import Pod
from repro.orchestrator.queue import PendingQueue
from repro.units import gib


def make_pod(name: str, submitted_at: float, epc=0, mem=0) -> Pod:
    spec = PodSpec(
        name=name,
        resources=ResourceRequirements(
            requests=ResourceVector(memory_bytes=mem, epc_pages=epc)
        ),
    )
    return Pod(spec, submitted_at=submitted_at)


class TestFcfsOrder:
    def test_iteration_is_submission_order(self):
        queue = PendingQueue()
        pods = [make_pod(f"p{i}", float(i)) for i in range(5)]
        for pod in pods:
            queue.push(pod)
        assert [p.name for p in queue] == [p.name for p in pods]

    def test_peek_returns_oldest(self):
        queue = PendingQueue()
        queue.push(make_pod("old", 1.0))
        queue.push(make_pod("new", 2.0))
        assert queue.peek().name == "old"

    def test_peek_empty(self):
        assert PendingQueue().peek() is None

    def test_removal_preserves_relative_order(self):
        queue = PendingQueue()
        pods = [make_pod(f"p{i}", float(i)) for i in range(4)]
        for pod in pods:
            queue.push(pod)
        queue.remove(pods[1])
        assert [p.name for p in queue] == ["p0", "p2", "p3"]


class TestMembership:
    def test_double_push_rejected(self):
        queue = PendingQueue()
        pod = make_pod("p", 0.0)
        queue.push(pod)
        with pytest.raises(OrchestrationError):
            queue.push(pod)

    def test_remove_missing_rejected(self):
        with pytest.raises(OrchestrationError):
            PendingQueue().remove(make_pod("p", 0.0))

    def test_contains_and_len(self):
        queue = PendingQueue()
        pod = make_pod("p", 0.0)
        assert pod not in queue
        queue.push(pod)
        assert pod in queue
        assert len(queue) == 1


class TestAggregates:
    def test_pending_epc_pages(self):
        queue = PendingQueue()
        queue.push(make_pod("a", 0.0, epc=100))
        queue.push(make_pod("b", 1.0, epc=200))
        queue.push(make_pod("c", 2.0, mem=gib(1)))
        assert queue.total_requested_epc_pages() == 300

    def test_pending_memory(self):
        queue = PendingQueue()
        queue.push(make_pod("a", 0.0, mem=gib(1)))
        queue.push(make_pod("b", 1.0, mem=gib(2)))
        assert queue.total_requested_memory_bytes() == gib(3)

    def test_snapshot_is_a_copy(self):
        queue = PendingQueue()
        pod = make_pod("a", 0.0)
        queue.push(pod)
        snapshot = queue.snapshot()
        queue.remove(pod)
        assert snapshot == [pod]
