"""FCFS pending queue semantics (priority tiers, FCFS within each)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import ResourceVector
from repro.errors import OrchestrationError
from repro.orchestrator.api import PodSpec, ResourceRequirements
from repro.orchestrator.pod import Pod
from repro.orchestrator.queue import PendingQueue
from repro.units import gib


def make_pod(
    name: str, submitted_at: float, epc=0, mem=0, priority=0
) -> Pod:
    spec = PodSpec(
        name=name,
        resources=ResourceRequirements(
            requests=ResourceVector(memory_bytes=mem, epc_pages=epc)
        ),
        priority=priority,
    )
    return Pod(spec, submitted_at=submitted_at)


class TestFcfsOrder:
    def test_iteration_is_submission_order(self):
        queue = PendingQueue()
        pods = [make_pod(f"p{i}", float(i)) for i in range(5)]
        for pod in pods:
            queue.push(pod)
        assert [p.name for p in queue] == [p.name for p in pods]

    def test_peek_returns_oldest(self):
        queue = PendingQueue()
        queue.push(make_pod("old", 1.0))
        queue.push(make_pod("new", 2.0))
        assert queue.peek().name == "old"

    def test_peek_empty(self):
        assert PendingQueue().peek() is None

    def test_removal_preserves_relative_order(self):
        queue = PendingQueue()
        pods = [make_pod(f"p{i}", float(i)) for i in range(4)]
        for pod in pods:
            queue.push(pod)
        queue.remove(pods[1])
        assert [p.name for p in queue] == ["p0", "p2", "p3"]


class TestMembership:
    def test_double_push_rejected(self):
        queue = PendingQueue()
        pod = make_pod("p", 0.0)
        queue.push(pod)
        with pytest.raises(OrchestrationError):
            queue.push(pod)

    def test_remove_missing_rejected(self):
        with pytest.raises(OrchestrationError):
            PendingQueue().remove(make_pod("p", 0.0))

    def test_contains_and_len(self):
        queue = PendingQueue()
        pod = make_pod("p", 0.0)
        assert pod not in queue
        queue.push(pod)
        assert pod in queue
        assert len(queue) == 1


class TestPriorityTiers:
    def test_higher_tier_first_fcfs_within(self):
        queue = PendingQueue()
        queue.push(make_pod("low-old", 1.0, priority=0))
        queue.push(make_pod("high-young", 5.0, priority=100))
        queue.push(make_pod("low-young", 3.0, priority=0))
        queue.push(make_pod("high-old", 4.0, priority=100))
        assert [p.name for p in queue] == [
            "high-old", "high-young", "low-old", "low-young",
        ]

    def test_default_priority_preserves_pure_fcfs(self):
        # Every pod at the default 0: ordering collapses to the
        # pre-policy (submitted_at, uid) key.
        queue = PendingQueue()
        pods = [make_pod(f"p{i}", float(i)) for i in range(5)]
        for pod in pods:
            queue.push(pod)
        assert [p.name for p in queue] == [p.name for p in pods]

    def test_evicted_pod_resubmission_regains_tier_slot(self):
        # The eviction path resubmits a victim's *spec* with the
        # original submitted_at; the replacement must sort exactly
        # where the victim did, not at its tier's tail.
        queue = PendingQueue()
        victim = make_pod("victim", 1.0, priority=10)
        queue.push(make_pod("peer-young", 2.0, priority=10))
        replacement = Pod(victim.spec, submitted_at=victim.submitted_at)
        queue.push(replacement)
        assert [p.name for p in queue] == ["victim", "peer-young"]


class TestRequeueBoundary:
    def test_ready_at_equal_to_now_is_visible(self):
        # Off-by-one guard: a requeued pod whose backoff expires at
        # exactly `now` is eligible — `ready_at <= now`, not `<`.
        queue = PendingQueue(requeue_backoff_seconds=10.0)
        pod = make_pod("p", 0.0)
        queue.push(pod)
        queue.remove(pod)
        ready_at = queue.requeue(pod, now=5.0)
        assert ready_at == 15.0
        assert queue.snapshot(14.999) == []
        assert queue.ready_count(14.999) == 0
        assert queue.snapshot(15.0) == [pod]
        assert queue.ready_count(15.0) == 1
        assert queue.next_ready_at(15.0) is None

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["push", "requeue", "pop"]),
                st.integers(min_value=0, max_value=3),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_requeue_preserves_fcfs_order(self, ops):
        """Interleaved push/requeue/pop never reorders the queue.

        The model is simply "the queue equals its pods sorted by
        (-priority, submitted_at, uid)"; a requeue (backoff 0, as in
        the paper) must put the pod straight back into that order, so
        the oldest pod can never starve behind younger ones.
        """
        queue = PendingQueue()
        clock = 0.0
        counter = 0
        live = []
        for op, priority_index in ops:
            clock += 1.0
            priority = (0, 0, 10, 100)[priority_index]
            if op == "push":
                pod = make_pod(
                    f"pod-{counter}", clock, priority=priority
                )
                counter += 1
                queue.push(pod)
                live.append(pod)
            elif op == "requeue" and live:
                pod = live[priority_index % len(live)]
                queue.remove(pod)
                queue.requeue(pod, now=clock)
            elif op == "pop" and live:
                pod = queue.snapshot(clock)[0]
                queue.remove(pod)
                live.remove(pod)
            expected = sorted(
                live,
                key=lambda p: (-p.spec.priority, p.submitted_at, p.uid),
            )
            assert queue.snapshot(clock) == expected


class TestAggregates:
    def test_pending_epc_pages(self):
        queue = PendingQueue()
        queue.push(make_pod("a", 0.0, epc=100))
        queue.push(make_pod("b", 1.0, epc=200))
        queue.push(make_pod("c", 2.0, mem=gib(1)))
        assert queue.total_requested_epc_pages() == 300

    def test_pending_memory(self):
        queue = PendingQueue()
        queue.push(make_pod("a", 0.0, mem=gib(1)))
        queue.push(make_pod("b", 1.0, mem=gib(2)))
        assert queue.total_requested_memory_bytes() == gib(3)

    def test_snapshot_is_a_copy(self):
        queue = PendingQueue()
        pod = make_pod("a", 0.0)
        queue.push(pod)
        snapshot = queue.snapshot()
        queue.remove(pod)
        assert snapshot == [pod]
