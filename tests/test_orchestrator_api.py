"""API objects: specs, requirements, phases, workload profiles."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.errors import PodSpecError
from repro.orchestrator.api import (
    PodPhase,
    PodSpec,
    ResourceRequirements,
    WorkloadProfile,
    make_pod_spec,
)
from repro.units import gib, mib, pages


class TestResourceRequirements:
    def test_limits_default_to_requests(self):
        requests = ResourceVector(memory_bytes=gib(1))
        reqs = ResourceRequirements(requests=requests)
        assert reqs.effective_limits == requests

    def test_explicit_limits_kept(self):
        reqs = ResourceRequirements(
            requests=ResourceVector(epc_pages=10),
            limits=ResourceVector(epc_pages=20),
        )
        assert reqs.effective_limits.epc_pages == 20

    def test_negative_requests_rejected(self):
        with pytest.raises(PodSpecError):
            ResourceRequirements(
                requests=ResourceVector(memory_bytes=-1)
            )

    def test_requires_sgx(self):
        assert ResourceRequirements(
            requests=ResourceVector(epc_pages=1)
        ).requires_sgx


class TestWorkloadProfile:
    def test_uses_sgx(self):
        assert WorkloadProfile(10.0, epc_pages=1).uses_sgx
        assert not WorkloadProfile(10.0, memory_bytes=100).uses_sgx

    def test_negative_duration_rejected(self):
        with pytest.raises(PodSpecError):
            WorkloadProfile(-1.0)

    def test_negative_usage_rejected(self):
        with pytest.raises(PodSpecError):
            WorkloadProfile(1.0, memory_bytes=-5)


class TestPodSpec:
    def test_empty_name_rejected(self):
        with pytest.raises(PodSpecError):
            PodSpec(name="")

    def test_with_scheduler_copies(self):
        spec = PodSpec(name="p")
        other = spec.with_scheduler("sgx-aware-spread")
        assert other.scheduler_name == "sgx-aware-spread"
        assert spec.scheduler_name != other.scheduler_name

    def test_default_image_is_papers_base(self):
        assert PodSpec(name="p").image == "sebvaucher/sgx-base"


class TestMakePodSpec:
    def test_sgx_spec_round_trip(self):
        spec = make_pod_spec(
            "j",
            duration_seconds=60.0,
            declared_epc_bytes=mib(10),
            actual_epc_bytes=mib(12),
        )
        assert spec.requires_sgx
        assert spec.resources.requests.epc_pages == pages(mib(10))
        assert spec.workload.epc_pages == pages(mib(12))

    def test_actuals_default_to_declared(self):
        spec = make_pod_spec(
            "j", duration_seconds=5.0, declared_memory_bytes=gib(2)
        )
        assert spec.workload.memory_bytes == gib(2)

    def test_standard_spec_has_no_epc(self):
        spec = make_pod_spec(
            "j", duration_seconds=5.0, declared_memory_bytes=gib(1)
        )
        assert not spec.requires_sgx
        assert not spec.workload.uses_sgx


class TestPodPhase:
    def test_terminal_phases(self):
        assert PodPhase.SUCCEEDED.is_terminal
        assert PodPhase.FAILED.is_terminal

    def test_non_terminal_phases(self):
        for phase in (PodPhase.PENDING, PodPhase.BOUND, PodPhase.RUNNING):
            assert not phase.is_terminal
