"""EPC page accounting: strict and over-commit regimes."""

import pytest

from repro.errors import EpcExhaustedError, SgxError
from repro.sgx.epc import EnclavePageCache
from repro.units import mib


def make_epc(**kwargs) -> EnclavePageCache:
    return EnclavePageCache(**kwargs)


class TestGeometry:
    def test_default_usable_pages_match_paper(self):
        assert make_epc().total_pages == 23_936

    def test_usable_fraction_applied(self):
        epc = make_epc(total_bytes=mib(256))
        # Same 93.5/128 usable ratio at double the PRM.
        assert epc.usable_bytes == int(mib(256) * mib(93.5) / mib(128))

    def test_zero_size_rejected(self):
        with pytest.raises(SgxError):
            make_epc(total_bytes=0)

    def test_bad_usable_fraction_rejected(self):
        with pytest.raises(SgxError):
            make_epc(usable_fraction=1.5)


class TestStrictAllocation:
    def test_allocate_reduces_free(self):
        epc = make_epc()
        epc.allocate("pod-a", 1000)
        assert epc.free_pages == epc.total_pages - 1000

    def test_allocation_is_fully_resident_in_strict_mode(self):
        epc = make_epc()
        alloc = epc.allocate("pod-a", 1000)
        assert alloc.resident_pages == 1000
        assert alloc.paged_out_pages == 0

    def test_exhaustion_raises(self):
        epc = make_epc()
        with pytest.raises(EpcExhaustedError) as excinfo:
            epc.allocate("pod-a", epc.total_pages + 1)
        assert excinfo.value.requested_pages == epc.total_pages + 1
        assert excinfo.value.free_pages == epc.total_pages

    def test_exact_fit_succeeds(self):
        epc = make_epc()
        epc.allocate("pod-a", epc.total_pages)
        assert epc.free_pages == 0

    def test_failed_allocation_changes_nothing(self):
        epc = make_epc()
        epc.allocate("pod-a", 100)
        before = epc.allocated_pages
        with pytest.raises(EpcExhaustedError):
            epc.allocate("pod-b", epc.total_pages)
        assert epc.allocated_pages == before

    def test_non_positive_allocation_rejected(self):
        epc = make_epc()
        with pytest.raises(SgxError):
            epc.allocate("pod-a", 0)

    def test_release_returns_pages(self):
        epc = make_epc()
        alloc = epc.allocate("pod-a", 500)
        epc.release(alloc)
        assert epc.free_pages == epc.total_pages

    def test_double_release_rejected(self):
        epc = make_epc()
        alloc = epc.allocate("pod-a", 500)
        epc.release(alloc)
        with pytest.raises(SgxError):
            epc.release(alloc)

    def test_release_owner_releases_all(self):
        epc = make_epc()
        epc.allocate("pod-a", 100)
        epc.allocate("pod-a", 200)
        epc.allocate("pod-b", 300)
        freed = epc.release_owner("pod-a")
        assert freed == 300
        assert epc.allocated_pages == 300

    def test_usage_by_owner(self):
        epc = make_epc()
        epc.allocate("pod-a", 100)
        epc.allocate("pod-b", 200)
        epc.allocate("pod-a", 50)
        assert epc.usage_by_owner() == {"pod-a": 150, "pod-b": 200}

    def test_owner_pages_unknown_owner(self):
        assert make_epc().owner_pages("ghost") == 0


class TestOvercommit:
    def test_overcommit_allowed_when_enabled(self):
        epc = make_epc(allow_overcommit=True)
        epc.allocate("pod-a", epc.total_pages)
        alloc = epc.allocate("pod-b", 1000)
        assert alloc.resident_pages == 0
        assert alloc.paged_out_pages == 1000

    def test_overcommit_ratio(self):
        epc = make_epc(allow_overcommit=True)
        epc.allocate("pod-a", epc.total_pages)
        epc.allocate("pod-b", epc.total_pages)
        assert epc.overcommit_ratio() == pytest.approx(2.0)

    def test_not_overcommitted_below_capacity(self):
        epc = make_epc(allow_overcommit=True)
        epc.allocate("pod-a", 10)
        assert not epc.overcommitted
        assert epc.overcommit_ratio() < 1.0

    def test_free_pages_never_negative(self):
        epc = make_epc(allow_overcommit=True)
        epc.allocate("pod-a", epc.total_pages + 5000)
        assert epc.free_pages == 0

    def test_rebalance_residency_proportional(self):
        epc = make_epc(allow_overcommit=True)
        a = epc.allocate("pod-a", epc.total_pages)
        b = epc.allocate("pod-b", epc.total_pages)
        epc.rebalance_residency()
        allocations = {x.owner: x for x in epc.allocations()}
        assert allocations["pod-a"].resident_pages == pytest.approx(
            epc.total_pages // 2, abs=1
        )
        assert allocations["pod-b"].resident_pages == pytest.approx(
            epc.total_pages // 2, abs=1
        )
        assert a.pages == b.pages  # original records untouched in size

    def test_rebalance_restores_full_residency_after_release(self):
        epc = make_epc(allow_overcommit=True)
        first = epc.allocate("pod-a", epc.total_pages)
        epc.allocate("pod-b", 100)
        epc.release(first)
        epc.rebalance_residency()
        (remaining,) = list(epc.allocations())
        assert remaining.resident_pages == 100


class TestSnapshotMisc:
    def test_len_counts_allocations(self):
        epc = make_epc()
        epc.allocate("a", 1)
        epc.allocate("b", 1)
        assert len(epc) == 2

    def test_repr_mentions_totals(self):
        text = repr(make_epc())
        assert "23936" in text
