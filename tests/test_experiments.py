"""Experiment drivers: fast variants of every figure."""

import pytest

from repro.experiments.common import format_table
from repro.experiments.fig11_limits import format_fig11, run_fig11
from repro.experiments.fig3_memory_cdf import format_fig3, run_fig3
from repro.experiments.fig4_duration_cdf import format_fig4, run_fig4
from repro.experiments.fig5_concurrency import format_fig5, run_fig5
from repro.experiments.fig6_startup import format_fig6, run_fig6
from repro.experiments.fig7_epc_sizes import format_fig7, run_fig7
from repro.experiments.fig8_waiting_cdf import format_fig8, run_fig8
from repro.trace.borg import BorgTraceGenerator


@pytest.fixture(scope="module")
def tiny_trace():
    """A fast stand-in for the 663-job workload."""
    return BorgTraceGenerator(seed=11).scaled_trace(
        n_jobs=60, overallocators=4
    )


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["a", "bb"], [(1, 2.5), (10, 3.0)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.50" in text

    def test_header_separator(self):
        text = format_table(["col"], [("x",)])
        assert "---" in text.splitlines()[1]


class TestFig3:
    def test_cdf_is_monotone_and_complete(self):
        result = run_fig3(n_samples=5000)
        shares = [share for _, share in result.points]
        assert shares == sorted(shares)
        assert result.max_fraction_covered == pytest.approx(100.0)

    def test_most_jobs_below_a_tenth(self):
        result = run_fig3(n_samples=5000)
        assert result.share_below_tenth > 55.0

    def test_format(self):
        assert "CDF" in format_fig3(run_fig3(n_samples=1000))


class TestFig4:
    def test_all_jobs_within_cap(self):
        result = run_fig4(n_samples=5000)
        assert result.all_within_cap

    def test_cdf_monotone(self):
        result = run_fig4(n_samples=5000)
        shares = [share for _, share in result.points]
        assert shares == sorted(shares)

    def test_format(self):
        assert "duration" in format_fig4(run_fig4(n_samples=1000))


class TestFig5:
    def test_band_and_slice(self):
        result = run_fig5()
        low, high = result.band
        assert 115_000 < low < high < 155_000
        # The evaluation slice sits in a low-activity region.
        assert result.slice_mean() <= result.day_mean()

    def test_format_marks_slice(self):
        assert "eval slice" in format_fig5(run_fig5(step_seconds=300.0))


class TestFig6:
    def test_psw_flat_at_100ms(self):
        result = run_fig6()
        for row in result.rows:
            assert row.psw_mean_s == pytest.approx(0.100, rel=0.05)

    def test_two_linear_trends(self):
        result = run_fig6()
        assert result.alloc_slope_below_knee() == pytest.approx(
            0.0016, rel=0.10
        )
        assert result.alloc_slope_above_knee() == pytest.approx(
            0.0045, rel=0.10
        )

    def test_knee_penalty_visible(self):
        result = run_fig6()
        at_knee = result.row_at(93.5).alloc_mean_s
        past_knee = result.row_at(112.0).alloc_mean_s
        assert past_knee - at_knee > 0.200

    def test_format(self):
        assert "PSW" in format_fig6(run_fig6())


class TestFig7Small:
    def test_makespan_monotone_in_epc(self, tiny_trace):
        result = run_fig7(trace=tiny_trace, sizes_mib=(64, 128, 256))
        makespans = result.makespans()
        assert makespans[64] >= makespans[128] >= makespans[256]

    def test_queue_drains(self, tiny_trace):
        result = run_fig7(trace=tiny_trace, sizes_mib=(128,))
        series = result.runs[128].queue_series
        assert series[-1].pending_epc_pages == 0

    def test_format(self, tiny_trace):
        text = format_fig7(run_fig7(trace=tiny_trace, sizes_mib=(256,)))
        assert "makespan" in text


class TestFig8Small:
    def test_more_sgx_means_longer_waits(self, tiny_trace):
        result = run_fig8(trace=tiny_trace, fractions=(0.0, 1.0))
        assert (
            result.run_at(1.0).mean_wait >= result.run_at(0.0).mean_wait
        )

    def test_cdf_points_monotone(self, tiny_trace):
        result = run_fig8(trace=tiny_trace, fractions=(1.0,))
        shares = [s for _, s in result.run_at(1.0).cdf_points()]
        assert shares == sorted(shares)

    def test_format(self, tiny_trace):
        text = format_fig8(run_fig8(trace=tiny_trace, fractions=(0.0,)))
        assert "0% SGX" in text


class TestFig11Small:
    def test_enforcement_beats_squatters(self, tiny_trace):
        result = run_fig11(trace=tiny_trace)
        squatted = result.get("limits-disabled/50%-epc")
        enforced = result.get("limits-enabled/50%-epc")
        assert enforced.mean_wait <= squatted.mean_wait
        assert enforced.killed_pods > 0

    def test_format(self, tiny_trace):
        assert "killed" in format_fig11(run_fig11(trace=tiny_trace))


class TestFig9Small:
    def test_sgx_waits_exceed_standard(self, tiny_trace):
        from repro.experiments.fig9_strategies import run_fig9

        result = run_fig9(trace=tiny_trace)
        for strategy in ("binpack", "spread"):
            sgx = result.get(strategy, sgx=True)
            std = result.get(strategy, sgx=False)
            assert sgx.overall_mean_wait() >= 0.0
            assert std.overall_mean_wait() >= 0.0
            assert sgx.bins and std.bins

    def test_format(self, tiny_trace):
        from repro.experiments.fig9_strategies import (
            format_fig9,
            run_fig9,
        )

        assert "request bin" in format_fig9(run_fig9(trace=tiny_trace))


class TestFig10Small:
    def test_trace_bar_lower_bounds_runs(self, tiny_trace):
        from repro.experiments.fig10_turnaround import run_fig10

        result = run_fig10(trace=tiny_trace)
        for hours in result.turnaround_hours.values():
            assert hours >= result.trace_hours

    def test_ratio_helper(self, tiny_trace):
        from repro.experiments.fig10_turnaround import run_fig10

        result = run_fig10(trace=tiny_trace)
        for strategy in ("binpack", "spread"):
            assert result.sgx_to_standard_ratio(strategy) > 0.9

    def test_format(self, tiny_trace):
        from repro.experiments.fig10_turnaround import (
            format_fig10,
            run_fig10,
        )

        assert "trace" in format_fig10(run_fig10(trace=tiny_trace))
