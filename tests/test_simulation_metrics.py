"""Replay metrics: selections, aggregates, memory-bin analysis."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.orchestrator.api import (
    PodPhase,
    PodSpec,
    ResourceRequirements,
    WorkloadProfile,
)
from repro.orchestrator.pod import Pod
from repro.simulation.metrics import QueueSample, ReplayMetrics
from repro.units import gib, mib, pages


def finished_pod(
    name,
    submit=0.0,
    start=10.0,
    finish=70.0,
    epc_pages_count=0,
    mem=0,
) -> Pod:
    spec = PodSpec(
        name=name,
        resources=ResourceRequirements(
            requests=ResourceVector(
                memory_bytes=mem, epc_pages=epc_pages_count
            )
        ),
        workload=WorkloadProfile(
            duration_seconds=finish - start,
            memory_bytes=mem,
            epc_pages=epc_pages_count,
        ),
    )
    pod = Pod(spec, submitted_at=submit)
    pod.mark_bound("node", submit + 1.0)
    pod.mark_running(start)
    pod.mark_succeeded(finish)
    return pod


def failed_pod(name) -> Pod:
    pod = Pod(PodSpec(name=name), submitted_at=0.0)
    pod.mark_failed(5.0, "killed")
    return pod


class TestSelections:
    def test_phase_partition(self):
        metrics = ReplayMetrics(
            pods=[finished_pod("a"), failed_pod("b")]
        )
        assert [p.name for p in metrics.succeeded] == ["a"]
        assert [p.name for p in metrics.failed] == ["b"]
        assert metrics.pods_in_phase(PodPhase.RUNNING) == []

    def test_sgx_standard_split(self):
        metrics = ReplayMetrics(
            pods=[
                finished_pod("sgx", epc_pages_count=100),
                finished_pod("std", mem=gib(1)),
            ]
        )
        assert [p.name for p in metrics.sgx_pods()] == ["sgx"]
        assert [p.name for p in metrics.standard_pods()] == ["std"]


class TestAggregates:
    def test_waiting_and_turnaround(self):
        metrics = ReplayMetrics(
            pods=[finished_pod("a", submit=0.0, start=10.0, finish=70.0)]
        )
        assert metrics.waiting_times() == [10.0]
        assert metrics.turnaround_times() == [70.0]
        assert metrics.mean_waiting_seconds() == 10.0
        assert metrics.max_waiting_seconds() == 10.0
        assert metrics.total_turnaround_hours() == pytest.approx(
            70.0 / 3600.0
        )

    def test_empty_metrics_are_zero(self):
        metrics = ReplayMetrics()
        assert metrics.mean_waiting_seconds() == 0.0
        assert metrics.max_waiting_seconds() == 0.0
        assert metrics.waiting_times() == []

    def test_failed_pods_excluded_from_waiting(self):
        metrics = ReplayMetrics(pods=[failed_pod("b")])
        assert metrics.waiting_times() == []


class TestMemoryBins:
    def make_metrics(self):
        pods = []
        for index, epc_mib in enumerate((5, 10, 20, 40, 80)):
            pods.append(
                finished_pod(
                    f"sgx-{index}",
                    start=10.0 + index,
                    epc_pages_count=pages(mib(epc_mib)),
                )
            )
        return ReplayMetrics(pods=pods)

    def test_bins_cover_all_pods(self):
        metrics = self.make_metrics()
        rows = metrics.waiting_by_memory_bin(bin_count=4, sgx=True)
        assert sum(int(r["count"]) for r in rows) == 5

    def test_bin_edges_monotone(self):
        rows = self.make_metrics().waiting_by_memory_bin(
            bin_count=4, sgx=True
        )
        for row in rows:
            assert row["bin_low"] < row["bin_high"]
        lows = [r["bin_low"] for r in rows]
        assert lows == sorted(lows)

    def test_no_matching_pods_returns_empty(self):
        metrics = self.make_metrics()
        assert metrics.waiting_by_memory_bin(sgx=False) == []

    def test_ci_reported(self):
        rows = self.make_metrics().waiting_by_memory_bin(
            bin_count=1, sgx=True
        )
        (row,) = rows
        assert row["ci95"] >= 0.0
        assert row["count"] == 5.0


class TestQueueSample:
    def test_pending_epc_mib(self):
        sample = QueueSample(
            time=1.0,
            queued_pods=2,
            pending_epc_pages=256,
            pending_memory_bytes=0,
        )
        assert sample.pending_epc_mib == pytest.approx(1.0)
