"""Cell partition policies: totality, determinism, shape invariants.

The central property, hypothesis-checked across seeds, cluster shapes
and hardware mixes: **every registered policy assigns every node to
exactly one cell**, with ids in range — no drops, no duplicates, no
inventions.  :func:`partition_nodes` also enforces that contract on
plugins at call time, so the validation-error paths are covered here
too.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.cells  # noqa: F401  (registers the built-in policies)
from repro.cells.policies import node_region, partition_nodes
from repro.cluster.node import Node, NodeSpec
from repro.errors import RegistryError, SimulationError
from repro.registry import cell_policy_names, register_cell_policy
from repro.units import gib


def mixed_nodes(standard, sgx, big_prm=0):
    """A cluster inventory mixing hardware shapes."""
    nodes = [
        Node(NodeSpec.standard(f"worker-{i}")) for i in range(standard)
    ]
    nodes += [
        Node(NodeSpec.sgx(f"sgx-worker-{i}")) for i in range(sgx)
    ]
    nodes += [
        Node(NodeSpec.sgx(f"bigprm-{i}", epc_total_bytes=int(gib(1))))
        for i in range(big_prm)
    ]
    return nodes


class TestPartitionTotality:
    @given(
        standard=st.integers(min_value=0, max_value=12),
        sgx=st.integers(min_value=0, max_value=12),
        big_prm=st.integers(min_value=0, max_value=4),
        cells=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
        policy=st.sampled_from(sorted(cell_policy_names())),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_node_in_exactly_one_cell(
        self, standard, sgx, big_prm, cells, seed, policy
    ):
        nodes = mixed_nodes(standard, sgx, big_prm)
        if not nodes:
            nodes = [Node(NodeSpec.standard("worker-0"))]
        assignment = partition_nodes(nodes, cells, policy, seed=seed)
        # Total: exactly the inventory, each name once, ids in range.
        assert sorted(assignment) == sorted(n.name for n in nodes)
        assert all(0 <= c < cells for c in assignment.values())
        # Deterministic: the same inputs partition identically.
        again = partition_nodes(nodes, cells, policy, seed=seed)
        assert again == assignment

    @given(
        standard=st.integers(min_value=1, max_value=16),
        sgx=st.integers(min_value=0, max_value=16),
        cells=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_balanced_sizes_differ_by_at_most_one(
        self, standard, sgx, cells, seed
    ):
        nodes = mixed_nodes(standard, sgx)
        assignment = partition_nodes(nodes, cells, "balanced", seed=seed)
        sizes = [
            sum(1 for c in assignment.values() if c == cell)
            for cell in range(cells)
        ]
        assert max(sizes) - min(sizes) <= 1

    def test_region_keeps_co_named_nodes_together(self):
        nodes = mixed_nodes(4, 4)
        assignment = partition_nodes(nodes, 2, "region")
        by_region = {}
        for node in nodes:
            region = node_region(node.name)
            by_region.setdefault(region, set()).add(
                assignment[node.name]
            )
        assert all(len(cells) == 1 for cells in by_region.values())

    def test_capacity_class_keeps_identical_shapes_together(self):
        nodes = mixed_nodes(3, 3, big_prm=2)
        assignment = partition_nodes(nodes, 3, "capacity-class")
        by_shape = {}
        for node in nodes:
            shape = (node.sgx_capable, node.capacity)
            by_shape.setdefault(shape, set()).add(assignment[node.name])
        assert all(len(cells) == 1 for cells in by_shape.values())

    def test_balanced_shuffle_depends_on_seed(self):
        nodes = mixed_nodes(8, 8)
        partitions = {
            tuple(
                sorted(partition_nodes(nodes, 4, "balanced", seed=s)
                       .items())
            )
            for s in range(8)
        }
        assert len(partitions) > 1


class TestNodeRegion:
    def test_trailing_index_stripped(self):
        assert node_region("worker-3") == "worker"
        assert node_region("sgx-worker-11") == "sgx-worker"
        assert node_region("rack2-node-7") == "rack2-node"

    def test_no_numeric_suffix_is_own_region(self):
        assert node_region("gateway") == "gateway"
        assert node_region("edge-a") == "edge-a"


@register_cell_policy("test-dropper")
def _dropper(nodes, cells, seed=0):
    return {node.name: 0 for node in list(nodes)[1:]}


@register_cell_policy("test-inventor")
def _inventor(nodes, cells, seed=0):
    out = {node.name: 0 for node in nodes}
    out["ghost-99"] = 0
    return out


@register_cell_policy("test-out-of-range")
def _out_of_range(nodes, cells, seed=0):
    return {node.name: cells for node in nodes}


@register_cell_policy("test-non-int")
def _non_int(nodes, cells, seed=0):
    return {node.name: True for node in nodes}


class TestPartitionValidation:
    def test_cells_below_one_rejected(self):
        with pytest.raises(SimulationError, match="cells must be >= 1"):
            partition_nodes(mixed_nodes(2, 0), 0, "balanced")

    def test_unknown_policy_rejected(self):
        with pytest.raises(RegistryError):
            partition_nodes(mixed_nodes(2, 0), 2, "no-such-policy")

    def test_dropped_node_rejected(self):
        with pytest.raises(SimulationError, match="dropped node"):
            partition_nodes(mixed_nodes(3, 0), 1, "test-dropper")

    def test_invented_node_rejected(self):
        with pytest.raises(SimulationError, match="invented node"):
            partition_nodes(mixed_nodes(2, 0), 1, "test-inventor")

    def test_out_of_range_cell_rejected(self):
        with pytest.raises(SimulationError, match="outside"):
            partition_nodes(mixed_nodes(2, 0), 2, "test-out-of-range")

    def test_bool_cell_id_rejected(self):
        # bool is an int subclass; the contract wants a real int.
        with pytest.raises(SimulationError, match="non-int"):
            partition_nodes(mixed_nodes(2, 0), 2, "test-non-int")

    def test_validated_assignment_follows_inventory_order(self):
        nodes = mixed_nodes(3, 3)
        assignment = partition_nodes(nodes, 2, "balanced", seed=5)
        assert list(assignment) == [node.name for node in nodes]
