"""Windowed aggregate cache: unit behaviour plus scan equivalence.

The load-bearing property: with a cache attached, ``execute_query`` on
Listing 1's query shape returns bit-for-bit the rows a full window scan
returns, across randomised write/vacuum/query interleavings — including
the adversarial ones (out-of-order writes, clocks that move backwards)
where the cache must detect it cannot answer and fall back.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import METRICS_WINDOW_SECONDS
from repro.errors import MonitoringError
from repro.monitoring.aggregate import WindowedAggregateCache
from repro.monitoring.influxql import execute_query, parse_query
from repro.monitoring.tsdb import Point, TimeSeriesDatabase

WINDOW = 25.0

#: Listing 1's inner query, the shape the cache accelerates.
INNER = (
    'SELECT MAX(value) AS usage FROM "sgx/epc" '
    "WHERE value <> 0 AND time >= now() - 25s "
    "GROUP BY pod_name, nodename"
)

#: The paper's full Listing 1 (outer SUM over the cached inner query).
LISTING_1 = (
    "SELECT SUM(epc) AS epc FROM "
    '(SELECT MAX(value) AS epc FROM "sgx/epc" '
    "WHERE value <> 0 AND time >= now() - 25s "
    "GROUP BY pod_name, nodename) GROUP BY nodename"
)


def full_scan(query, db, now):
    """Run *query* with the fast path disabled, restoring it after."""
    cache = db.aggregate_cache
    db.aggregate_cache = None
    try:
        return execute_query(query, db, now=now)
    finally:
        db.aggregate_cache = cache


def write(db, time, value, pod="pod-1", node="node-a"):
    tags = {}
    if pod is not None:
        tags["pod_name"] = pod
    if node is not None:
        tags["nodename"] = node
    db.write("sgx/epc", value=value, time=time, tags=tags)


class TestConstruction:
    def test_attaches_to_database(self):
        db = TimeSeriesDatabase()
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        assert db.aggregate_cache is cache

    def test_rejects_nonpositive_window(self):
        with pytest.raises(MonitoringError):
            WindowedAggregateCache(TimeSeriesDatabase(), window_seconds=0.0)

    def test_prepopulated_database_is_rebuilt_lazily(self):
        db = TimeSeriesDatabase()
        write(db, time=1.0, value=7.0)
        write(db, time=2.0, value=3.0)
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        snapshot = cache.snapshot("sgx/epc", now=5.0)
        assert snapshot is not None
        assert [(a.pod_name, a.max_value) for a in snapshot] == [
            ("pod-1", 7.0)
        ]
        assert cache.rebuilds == 1

    def test_detach_stops_mirroring_and_answering(self):
        db = TimeSeriesDatabase()
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        write(db, time=1.0, value=5.0)
        cache.detach()
        cache.detach()  # idempotent
        assert db.aggregate_cache is None
        write(db, time=2.0, value=9.0, pod="pod-2")
        assert cache.live_series("sgx/epc") == 0
        # A detached cache must never serve (stale) windows.
        assert cache.snapshot("sgx/epc", now=3.0) is None
        rows = execute_query(INNER, db, now=3.0)  # full scan, correct
        assert {r["usage"] for r in rows} == {5.0, 9.0}

    def test_raw_unsubscribe_also_detaches(self):
        """db.unsubscribe must not leave a holder serving frozen state."""
        db = TimeSeriesDatabase()
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        write(db, time=1.0, value=5.0)
        assert db.unsubscribe(cache)
        write(db, time=2.0, value=9.0)
        assert cache.snapshot("sgx/epc", now=3.0) is None  # declines

    def test_new_cache_replaces_and_detaches_previous(self):
        db = TimeSeriesDatabase()
        first = WindowedAggregateCache(db, window_seconds=WINDOW)
        second = WindowedAggregateCache(db, window_seconds=60.0)
        assert db.aggregate_cache is second
        assert len(db._subscribers) == 1
        write(db, time=1.0, value=5.0)
        assert first.snapshot("sgx/epc", now=2.0) is None
        assert second.live_series("sgx/epc") == 1


class TestSnapshot:
    def test_window_max_per_series(self):
        db = TimeSeriesDatabase()
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        write(db, time=1.0, value=10.0, pod="a")
        write(db, time=2.0, value=4.0, pod="a")
        write(db, time=3.0, value=6.0, pod="b")
        snapshot = cache.snapshot("sgx/epc", now=10.0)
        got = {a.pod_name: a.max_value for a in snapshot}
        assert got == {"a": 10.0, "b": 6.0}

    def test_old_points_expire_from_window(self):
        db = TimeSeriesDatabase()
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        write(db, time=0.0, value=100.0)
        write(db, time=20.0, value=5.0)
        (agg,) = cache.snapshot("sgx/epc", now=30.0)  # window [5, 30]
        assert agg.max_value == 5.0
        assert cache.snapshot("sgx/epc", now=50.0) == []
        assert cache.live_series("sgx/epc") == 0

    def test_zero_values_never_contribute(self):
        db = TimeSeriesDatabase()
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        write(db, time=1.0, value=0.0)
        assert cache.snapshot("sgx/epc", now=2.0) == []

    def test_latest_time_is_newest_contributing_point(self):
        db = TimeSeriesDatabase()
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        write(db, time=1.0, value=9.0)
        write(db, time=4.0, value=2.0)
        (agg,) = cache.snapshot("sgx/epc", now=5.0)
        assert agg.max_value == 9.0
        assert agg.latest_time == 4.0

    def test_unknown_measurement_is_empty(self):
        db = TimeSeriesDatabase()
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        assert cache.snapshot("memory/usage", now=1.0) == []

    def test_clock_moving_backwards_falls_back(self):
        db = TimeSeriesDatabase()
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        write(db, time=10.0, value=5.0)
        assert cache.snapshot("sgx/epc", now=20.0) is not None
        assert cache.snapshot("sgx/epc", now=9.0) is None
        assert cache.fallbacks == 1

    def test_out_of_order_write_triggers_rebuild(self):
        db = TimeSeriesDatabase()
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        write(db, time=10.0, value=5.0)
        write(db, time=3.0, value=50.0)  # late arrival, same series
        (agg,) = cache.snapshot("sgx/epc", now=12.0)
        assert agg.max_value == 50.0
        assert cache.rebuilds == 1

    def test_drop_measurement_forgets_series(self):
        db = TimeSeriesDatabase()
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        write(db, time=1.0, value=5.0)
        db.drop_measurement("sgx/epc")
        assert cache.snapshot("sgx/epc", now=2.0) == []

    def test_vacuum_trims_cache_with_store(self):
        db = TimeSeriesDatabase(retention_seconds=10.0)
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        write(db, time=0.0, value=100.0)
        write(db, time=19.0, value=1.0)
        db.vacuum(now=20.0)  # drops the t=0 point from the store
        (agg,) = cache.snapshot("sgx/epc", now=20.0)
        assert agg.max_value == 1.0

    def test_write_below_vacuum_floor_rebuilds_instead_of_clamping(self):
        """A point written *after* a vacuum with a time *below* the
        vacuum cutoff survives in the store, so the cache must not
        expire it through the lazily recorded floor."""
        db = TimeSeriesDatabase(retention_seconds=100.0)
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        write(db, time=100.0, value=3.0, pod="a", node="n")
        db.vacuum(now=2000.0)  # floor = 1900, store wiped
        write(db, time=906.0, value=7.0, pod="b", node="n")
        fast = execute_query(INNER, db, now=910.0)
        assert fast == full_scan(INNER, db, 910.0)
        assert fast == [
            {"pod_name": "b", "nodename": "n", "time": 906.0, "usage": 7.0}
        ]
        assert cache.rebuilds == 1

    def test_write_points_bulk_path_is_absorbed(self):
        db = TimeSeriesDatabase()
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        db.write_points(
            "sgx/epc",
            [
                Point.make(1.0, 8.0, {"pod_name": "a", "nodename": "n"}),
                Point.make(2.0, 3.0, {"pod_name": "a", "nodename": "n"}),
            ],
        )
        (agg,) = cache.snapshot("sgx/epc", now=3.0)
        assert agg.max_value == 8.0

    def test_snapshot_reads_no_stored_points(self):
        db = TimeSeriesDatabase()
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        for t in range(20):
            write(db, time=float(t), value=float(t + 1))
        before = db.scan_count
        cache.snapshot("sgx/epc", now=20.0)
        cache.snapshot("sgx/epc", now=21.0)
        assert db.scan_count == before


class TestFastPathRows:
    def test_rows_match_full_scan_exactly(self):
        db = TimeSeriesDatabase()
        WindowedAggregateCache(db, window_seconds=WINDOW)
        write(db, time=1.0, value=3.0, pod="a", node="n1")
        write(db, time=2.0, value=9.0, pod="a", node="n1")
        write(db, time=3.0, value=4.0, pod="b", node="n2")
        write(db, time=4.0, value=0.0, pod="c", node="n1")
        fast = execute_query(INNER, db, now=10.0)
        assert fast == full_scan(INNER, db, 10.0)
        assert {r["usage"] for r in fast} == {9.0, 4.0}

    def test_untagged_rows_survive_fast_path(self):
        db = TimeSeriesDatabase()
        WindowedAggregateCache(db, window_seconds=WINDOW)
        write(db, time=1.0, value=5.0, pod=None, node=None)
        fast = execute_query(INNER, db, now=2.0)
        assert fast == full_scan(INNER, db, 2.0)
        assert fast[0]["pod_name"] is None

    def test_mismatched_window_takes_full_scan(self):
        db = TimeSeriesDatabase()
        cache = WindowedAggregateCache(db, window_seconds=60.0)
        write(db, time=1.0, value=5.0)
        rows = execute_query(INNER, db, now=2.0)  # 25 s window != 60 s
        assert rows == full_scan(INNER, db, 2.0)
        assert cache.hits == 0

    def test_other_query_shapes_take_full_scan(self):
        db = TimeSeriesDatabase()
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        write(db, time=1.0, value=5.0)
        execute_query('SELECT MIN(value) FROM "sgx/epc"', db, now=2.0)
        execute_query('SELECT value FROM "sgx/epc"', db, now=2.0)
        assert cache.hits == 0

    def test_full_listing_1_is_accelerated_and_identical(self):
        db = TimeSeriesDatabase()
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        for t in range(8):
            write(db, time=float(t), value=float(10 + t), pod="a", node="n1")
            write(db, time=float(t), value=float(20 + t), pod="b", node="n1")
            write(db, time=float(t), value=float(5 + t), pod="c", node="n2")
        fast = execute_query(LISTING_1, db, now=10.0)
        assert fast == full_scan(LISTING_1, db, 10.0)
        assert cache.hits == 1


# -- randomised equivalence -------------------------------------------------

_PODS = st.sampled_from([None, "pod-a", "pod-b", "pod-c"])
_NODES = st.sampled_from([None, "node-1", "node-2"])
_TIMES = st.integers(min_value=0, max_value=200).map(lambda i: i / 2.0)
_VALUES = st.integers(min_value=-3, max_value=6).map(float)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("write"), _TIMES, _VALUES, _PODS, _NODES),
        st.tuples(st.just("vacuum"), _TIMES),
        st.tuples(st.just("query"), _TIMES),
    ),
    max_size=60,
)


class TestEquivalenceProperty:
    @given(ops=_OPS, retention=st.sampled_from([None, 12.0, 50.0]))
    @settings(max_examples=200, deadline=None)
    def test_cached_rows_equal_full_scan_rows(self, ops, retention):
        """Adversarial interleavings: fast path == full scan, always."""
        db = TimeSeriesDatabase(retention_seconds=retention)
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        parsed = parse_query(INNER)
        queried = False
        for op in ops:
            if op[0] == "write":
                _, time, value, pod, node = op
                write(db, time=time, value=value, pod=pod, node=node)
            elif op[0] == "vacuum":
                if retention is not None:
                    db.vacuum(now=op[1])
            else:
                now = op[1]
                fast = execute_query(parsed, db, now=now)
                assert fast == full_scan(parsed, db, now)
                queried = True
        if queried:
            assert cache.hits + cache.fallbacks > 0

    @given(
        samples=st.lists(
            st.tuples(_TIMES, _VALUES, _PODS, _NODES), max_size=50
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_replay_never_falls_back(self, samples):
        """The simulation's access pattern stays on the O(1) path."""
        db = TimeSeriesDatabase()
        cache = WindowedAggregateCache(db, window_seconds=WINDOW)
        parsed = parse_query(INNER)
        for time, value, pod, node in sorted(samples, key=lambda s: s[0]):
            write(db, time=time, value=value, pod=pod, node=node)
            now = time  # queries at the write frontier, as replays do
            assert execute_query(parsed, db, now=now) == full_scan(
                parsed, db, now
            )
        assert cache.fallbacks == 0
        assert cache.rebuilds == 0

    @given(ops=_OPS)
    @settings(max_examples=100, deadline=None)
    def test_full_listing_1_equivalence(self, ops):
        """The nested paper query is identical through the fast path."""
        db = TimeSeriesDatabase()
        WindowedAggregateCache(db, window_seconds=WINDOW)
        parsed = parse_query(LISTING_1)
        for op in ops:
            if op[0] == "write":
                _, time, value, pod, node = op
                write(db, time=time, value=value, pod=pod, node=node)
            elif op[0] == "query":
                now = op[1]
                assert execute_query(parsed, db, now=now) == full_scan(
                    parsed, db, now
                )


class TestWindowMatchesSchedulerConstants:
    def test_default_window_matches_listing_1(self):
        assert METRICS_WINDOW_SECONDS == WINDOW
