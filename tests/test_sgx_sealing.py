"""Sealed storage: policies, platform binding, tamper detection."""

import pytest

from repro.errors import SgxError
from repro.sgx.aesm import AesmService
from repro.sgx.enclave import Enclave
from repro.sgx.epc import EnclavePageCache
from repro.sgx.sealing import (
    SealingError,
    SealingService,
    SealPolicy,
)
from repro.units import mib

SECRET = b"database encryption key material"


@pytest.fixture
def aesm() -> AesmService:
    service = AesmService()
    service.start()
    return service


def initialized_enclave(aesm, size=mib(4), signer="vendor") -> Enclave:
    enclave = Enclave(
        owner="/kubepods/burstable/podseal",
        epc=EnclavePageCache(),
        size_bytes=size,
        signer=signer,
    )
    token = aesm.get_launch_token(enclave.measurement, enclave.signer)
    enclave.initialize(token)
    return enclave


class TestRoundTrip:
    def test_seal_unseal_mrsigner(self, aesm):
        service = SealingService("platform-a")
        enclave = initialized_enclave(aesm)
        blob = service.seal(enclave, SECRET, SealPolicy.MRSIGNER)
        assert service.unseal(enclave, blob) == SECRET

    def test_seal_unseal_mrenclave(self, aesm):
        service = SealingService("platform-a")
        enclave = initialized_enclave(aesm)
        blob = service.seal(enclave, SECRET, SealPolicy.MRENCLAVE)
        assert service.unseal(enclave, blob) == SECRET

    def test_ciphertext_differs_from_plaintext(self, aesm):
        service = SealingService("platform-a")
        enclave = initialized_enclave(aesm)
        blob = service.seal(enclave, SECRET)
        assert blob.ciphertext != SECRET
        assert blob.size_bytes == len(SECRET)

    def test_restart_survives_without_reattestation(self, aesm):
        # Section II's point: a *new instance* of the same enclave on
        # the same platform unseals without a fresh remote attestation.
        service = SealingService("platform-a")
        first = initialized_enclave(aesm, size=mib(4))
        blob = service.seal(first, SECRET, SealPolicy.MRENCLAVE)
        first.destroy()
        second = initialized_enclave(aesm, size=mib(4))
        assert second.measurement == first.measurement
        assert service.unseal(second, blob) == SECRET

    def test_empty_payload(self, aesm):
        service = SealingService("platform-a")
        enclave = initialized_enclave(aesm)
        blob = service.seal(enclave, b"")
        assert service.unseal(enclave, blob) == b""


class TestPolicySemantics:
    def test_mrenclave_rejects_different_build(self, aesm):
        service = SealingService("platform-a")
        old_build = initialized_enclave(aesm, size=mib(4))
        new_build = initialized_enclave(aesm, size=mib(8))  # new version
        blob = service.seal(old_build, SECRET, SealPolicy.MRENCLAVE)
        with pytest.raises(SealingError):
            service.unseal(new_build, blob)

    def test_mrsigner_allows_upgraded_build(self, aesm):
        service = SealingService("platform-a")
        old_build = initialized_enclave(aesm, size=mib(4))
        new_build = initialized_enclave(aesm, size=mib(8))
        blob = service.seal(old_build, SECRET, SealPolicy.MRSIGNER)
        assert service.unseal(new_build, blob) == SECRET

    def test_mrsigner_rejects_other_vendor(self, aesm):
        service = SealingService("platform-a")
        ours = initialized_enclave(aesm, signer="vendor")
        theirs = initialized_enclave(aesm, signer="eve-corp")
        blob = service.seal(ours, SECRET, SealPolicy.MRSIGNER)
        with pytest.raises(SealingError):
            service.unseal(theirs, blob)


class TestPlatformBinding:
    def test_other_platform_cannot_unseal(self, aesm):
        enclave = initialized_enclave(aesm)
        blob = SealingService("platform-a").seal(enclave, SECRET)
        with pytest.raises(SealingError):
            SealingService("platform-b").unseal(enclave, blob)

    def test_empty_platform_rejected(self):
        with pytest.raises(SgxError):
            SealingService("")


class TestIntegrity:
    def test_tampered_ciphertext_detected(self, aesm):
        from dataclasses import replace

        service = SealingService("platform-a")
        enclave = initialized_enclave(aesm)
        blob = service.seal(enclave, SECRET)
        flipped = bytes([blob.ciphertext[0] ^ 0xFF]) + blob.ciphertext[1:]
        tampered = replace(blob, ciphertext=flipped)
        with pytest.raises(SealingError, match="MAC"):
            service.unseal(enclave, tampered)

    def test_uninitialized_enclave_cannot_seal(self, aesm):
        service = SealingService("platform-a")
        enclave = Enclave(
            owner="/kubepods/burstable/podseal",
            epc=EnclavePageCache(),
            size_bytes=mib(1),
        )
        with pytest.raises(SealingError):
            service.seal(enclave, SECRET)
