"""The observability toolchain: diff, explain, spans, metrics.

The diff fixtures pin the *true first divergence* for run pairs that
differ in exactly one knob: a seed pair must split on the first
record the reshuffled workload changes, the event-driven ledger must
first diverge from the periodic one at a ``pass_skipped`` record (the
only decision the two engines make differently), and a preemption
on/off pair must split at the planner's first verdict.
"""

import pytest

from repro.api import ObserveConfig, Scenario
from repro.errors import SimulationError
from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    NULL_SPANS,
    MetricsRegistry,
    SpanRecorder,
    diff_ledgers,
    explain_pod,
    format_diff,
    format_explain,
    load_ledger,
    pod_events,
)
from repro.trace.borg import synthetic_scaled_trace
from repro.units import mib


def bursty_trace(trace_seed, n_jobs):
    return synthetic_scaled_trace(
        seed=trace_seed,
        n_jobs=n_jobs,
        overallocators=max(1, n_jobs // 10),
        window_seconds=120.0,
    )


def record(scenario, directory, name):
    path = str(directory / (name + ".jsonl"))
    result = scenario.with_(
        observe=ObserveConfig(ledger_path=path)
    ).run()
    return load_ledger(path), result


@pytest.fixture
def base_scenario():
    return Scenario(
        trace=bursty_trace(7, 40), sgx_fraction=0.5, seed=3
    )


class TestDiffDivergenceHunt:
    def test_seed_pair_diverges_at_the_reshuffled_workload(
        self, tmp_path, base_scenario
    ):
        left, _ = record(base_scenario, tmp_path, "seed3")
        right, _ = record(
            base_scenario.with_(seed=4), tmp_path, "seed4"
        )
        diff = diff_ledgers(left, right)
        assert not diff.identical
        assert ("seed", 3, 4) in diff.header_diffs
        assert ("config.seed", 3, 4) in diff.header_diffs
        first = diff.first_divergence
        # Verify it is the TRUE first divergence: every earlier
        # lockstep position matches, and the records at the reported
        # index differ.
        assert left.events[: first.index] == right.events[: first.index]
        assert left.events[first.index] != right.events[first.index]
        assert first.left == left.events[first.index]
        assert first.right == right.events[first.index]
        # The seed only redraws SGX designation, so the split is the
        # first record naming a redesignated pod.
        assert first.left["t"] == first.right["t"]

    def test_event_driven_first_diverges_on_a_skipped_pass(
        self, tmp_path, base_scenario
    ):
        periodic, _ = record(base_scenario, tmp_path, "periodic")
        event, result = record(
            base_scenario.with_(event_driven=True), tmp_path, "event"
        )
        assert result.passes_skipped > 0
        diff = diff_ledgers(periodic, event)
        assert not diff.identical
        assert (
            "config.event_driven", False, True
        ) in diff.header_diffs
        first = diff.first_divergence
        assert periodic.events[: first.index] == (
            event.events[: first.index]
        )
        # The engines take identical decisions until the first wake-up
        # the event-driven mode proves clean: the event-driven ledger
        # records the skip where the periodic oracle's stream carries
        # whatever its (no-op) pass recorded next.
        assert first.right["kind"] == "pass_skipped"
        assert first.left["kind"] != "pass_skipped"

    def test_preemption_pair_diverges_at_the_first_plan(
        self, tmp_path
    ):
        contended = Scenario(
            trace=bursty_trace(7, 40),
            sgx_fraction=1.0,
            seed=1,
            epc_total_bytes=mib(64),
            workload="priority-mix",
            workload_options={
                "high_fraction": 0.25,
                "high_priority": "latency-critical",
            },
        )
        off, _ = record(contended, tmp_path, "off")
        on, result = record(
            contended.with_(preemption_policy="cheapest-victims"),
            tmp_path,
            "on",
        )
        assert result.preemption_count > 0
        diff = diff_ledgers(off, on)
        assert not diff.identical
        assert (
            "config.preemption_policy", "none", "cheapest-victims"
        ) in diff.header_diffs
        first = diff.first_divergence
        assert off.events[: first.index] == on.events[: first.index]
        # The runs are identical until the first pass where the
        # planner is consulted: its verdict record only exists on the
        # preempting side.
        assert first.right["kind"] == "preemption_plan"

    def test_format_diff_renders_the_hunt(self, tmp_path, base_scenario):
        left, _ = record(base_scenario, tmp_path, "a")
        right, _ = record(
            base_scenario.with_(seed=4), tmp_path, "b"
        )
        text = format_diff(diff_ledgers(left, right, context=2))
        assert "first divergence at event index" in text
        assert "header differences:" in text
        assert "\n    < " in text and "\n    > " in text
        identical = format_diff(diff_ledgers(left, left))
        assert "decision streams are identical" in identical

    def test_truncated_stream_reports_tail_divergence(
        self, tmp_path, base_scenario
    ):
        full, _ = record(base_scenario, tmp_path, "full")
        short_path = tmp_path / "short.jsonl"
        lines = (tmp_path / "full.jsonl").read_text().splitlines()
        short_path.write_text("\n".join(lines[:-3]) + "\n")
        diff = diff_ledgers(full, load_ledger(str(short_path)))
        assert not diff.identical
        assert diff.diffs == 0 and diff.only_left == 3
        assert diff.first_divergence.index == len(full.events) - 3
        assert diff.first_divergence.right is None


class TestExplain:
    def test_lifecycle_reconstruction(self, tmp_path, base_scenario):
        ledger, result = record(base_scenario, tmp_path, "run")
        pod = result.metrics.pods[0]
        report = explain_pod(ledger, pod.spec.name)
        assert report["pod"] == pod.spec.name
        assert report["submitted_at"] == pytest.approx(
            pod.submitted_at
        )
        (placement,) = report["placements"]
        assert placement["node"] == pod.node_name
        assert placement["t"] == pytest.approx(pod.bound_at)
        assert report["finished"]["outcome"] == "pod-completed"
        assert report["events"] == len(report["timeline"])
        text = format_explain(report)
        assert f"pod {pod.spec.name}" in text
        assert "submitted" in text and "placed on" in text

    def test_deferred_pod_reports_wait_reasons(self, tmp_path):
        # A 64 MiB PRM with an all-SGX workload: pods queue on EPC.
        contended = Scenario(
            trace=bursty_trace(7, 40),
            sgx_fraction=1.0,
            seed=1,
            epc_total_bytes=mib(64),
        )
        ledger, result = record(contended, tmp_path, "run")
        deferred = [
            event
            for event in ledger.events
            if event["kind"] == "deferral"
        ]
        assert deferred, "fixture regime must defer some pods"
        report = explain_pod(ledger, deferred[0]["pod"])
        assert report["deferral_passes"] >= 1
        assert sum(report["wait_reasons"].values()) == (
            report["deferral_passes"]
        )
        assert "deferred in" in format_explain(report)

    def test_unknown_pod_raises(self, tmp_path, base_scenario):
        ledger, _ = record(base_scenario, tmp_path, "run")
        with pytest.raises(SimulationError, match="no event"):
            explain_pod(ledger, "no-such-pod")
        assert pod_events(ledger, "no-such-pod") == []


class TestSpans:
    def test_chrome_trace_export(self, tmp_path, base_scenario):
        result = base_scenario.with_(
            observe=ObserveConfig(
                trace_path=str(tmp_path / "run.trace.json")
            )
        ).run()
        assert result.trace_path is not None
        assert result.ledger_path is None
        import json

        document = json.loads(open(result.trace_path).read())
        events = document["traceEvents"]
        assert events, "a replay must record spans"
        names = {event["name"] for event in events}
        assert {"replay", "pass", "view_rebuild"} <= names
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        (replay_span,) = [e for e in events if e["name"] == "replay"]
        assert replay_span["args"]["sim_time"] > 0.0

    def test_cell_spans_carry_cell_ids(self, tmp_path, base_scenario):
        result = base_scenario.with_(
            cells=2,
            observe=ObserveConfig(
                trace_path=str(tmp_path / "cells.trace.json")
            ),
        ).run()
        import json

        events = json.loads(open(result.trace_path).read())[
            "traceEvents"
        ]
        cell_ids = {
            event["args"]["cell"]
            for event in events
            if event["name"] == "cell_pass"
        }
        assert cell_ids == {0, 1}

    def test_recorder_api(self):
        recorder = SpanRecorder()
        t0 = recorder.begin()
        recorder.end(t0, "unit", 12.5)
        assert recorder.span_count == 1
        (event,) = recorder.to_dict()["traceEvents"]
        assert event["name"] == "unit"
        assert event["args"] == {"sim_time": 12.5}
        assert NULL_SPANS.begin() == 0.0
        assert NULL_SPANS.end(0.0, "ignored") is None
        assert NULL_SPANS.enabled is False


class TestMetrics:
    def test_prometheus_snapshot_of_a_run(
        self, tmp_path, base_scenario
    ):
        result = base_scenario.with_(
            observe=ObserveConfig(
                ledger_path=str(tmp_path / "run.jsonl"),
                metrics_path=str(tmp_path / "run.prom"),
            )
        ).run()
        text = open(result.metrics_path).read()
        assert "# TYPE repro_passes_total counter" in text
        assert (
            f'repro_passes_total{{outcome="executed"}} '
            f"{result.passes_executed}" in text
        )
        assert "# TYPE repro_pod_wait_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert (
            f"repro_pod_wait_seconds_count {len(result.metrics.pods)}"
            in text
        )
        assert "repro_makespan_seconds" in text
        # Determinism: a repeat run snapshots byte-identically.
        again = base_scenario.with_(
            observe=ObserveConfig(
                ledger_path=str(tmp_path / "again.jsonl"),
                metrics_path=str(tmp_path / "again.prom"),
            )
        ).run()
        assert open(again.metrics_path).read() == text

    def test_registry_rendering(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", 2, queue="sgx")
        registry.counter("jobs_total", 1, queue="sgx")
        registry.counter("jobs_total", 5, queue="std")
        registry.gauge("temperature", 21.5)
        for value in (0.5, 3.0, 400.0):
            registry.observe("wait_seconds", value)
        text = registry.render()
        assert 'jobs_total{queue="sgx"} 3' in text
        assert 'jobs_total{queue="std"} 5' in text
        assert "temperature 21.5" in text
        assert 'wait_seconds_bucket{le="1"} 1' in text
        assert 'wait_seconds_bucket{le="+Inf"} 3' in text
        assert "wait_seconds_sum 403.5" in text
        assert "wait_seconds_count 3" in text
        # Families render sorted, so output is deterministic.
        assert text.index("jobs_total") < text.index("temperature")
        assert len(DEFAULT_BUCKETS) >= 5
        assert NULL_METRICS.enabled is False
        assert NULL_METRICS.counter("x") is None
