"""Container images: registry, node cache, pull costs in admission."""

import pytest

from repro.cluster.node import Node, NodeSpec
from repro.cluster.topology import paper_cluster
from repro.errors import OrchestrationError
from repro.orchestrator.api import make_pod_spec
from repro.orchestrator.controller import Orchestrator
from repro.orchestrator.images import (
    SGX_BASE_IMAGE,
    ContainerImage,
    ImagePullError,
    ImageRegistry,
    NodeImageCache,
)
from repro.orchestrator.kubelet import Kubelet
from repro.orchestrator.pod import Pod
from repro.scheduler.binpack import BinpackScheduler
from repro.units import mib


class TestRegistry:
    def test_paper_images_preloaded(self):
        registry = ImageRegistry.with_paper_images()
        assert SGX_BASE_IMAGE in registry
        assert registry.resolve(SGX_BASE_IMAGE).has_sgx_psw
        for name in ("redis", "apache", "mysql", "consul"):
            assert name in registry

    def test_missing_image_rejected(self):
        with pytest.raises(ImagePullError):
            ImageRegistry().resolve("ghost:latest")

    def test_pull_counts_traffic(self):
        registry = ImageRegistry.with_paper_images()
        registry.serve_pull("redis")
        registry.serve_pull("redis")
        assert registry.pull_count == 2

    def test_image_validation(self):
        with pytest.raises(OrchestrationError):
            ContainerImage("", mib(1))
        with pytest.raises(OrchestrationError):
            ContainerImage("x", 0)


class TestNodeCache:
    def test_first_pull_costs_transfer_time(self):
        registry = ImageRegistry.with_paper_images()
        cache = NodeImageCache(node_name="w0")
        latency = cache.pull(registry, SGX_BASE_IMAGE)
        expected = mib(390) / 125_000_000
        assert latency == pytest.approx(expected)

    def test_second_pull_is_free(self):
        registry = ImageRegistry.with_paper_images()
        cache = NodeImageCache(node_name="w0")
        cache.pull(registry, "redis")
        assert cache.pull(registry, "redis") == 0.0
        assert registry.pull_count == 1

    def test_evict_forces_repull(self):
        registry = ImageRegistry.with_paper_images()
        cache = NodeImageCache(node_name="w0")
        cache.pull(registry, "redis")
        assert cache.evict("redis")
        assert not cache.evict("redis")
        assert cache.pull(registry, "redis") > 0.0

    def test_cached_listing(self):
        registry = ImageRegistry.with_paper_images()
        cache = NodeImageCache(node_name="w0")
        cache.pull(registry, "redis")
        assert cache.cached_images == {"redis"}


class TestKubeletIntegration:
    def test_admission_includes_pull_latency(self):
        registry = ImageRegistry.with_paper_images()
        kubelet = Kubelet(Node(NodeSpec.sgx("s0")), registry=registry)
        spec = make_pod_spec(
            "job", duration_seconds=10.0, declared_epc_bytes=mib(10)
        )
        pod = Pod(spec, submitted_at=0.0)
        pod.mark_bound("s0", 1.0)
        result = kubelet.admit(pod)
        pull = mib(390) / 125_000_000
        sgx_startup = 0.100 + 10 * 0.0016
        assert result.startup_seconds == pytest.approx(pull + sgx_startup)

    def test_second_pod_hits_cache(self):
        registry = ImageRegistry.with_paper_images()
        kubelet = Kubelet(Node(NodeSpec.sgx("s0")), registry=registry)
        startups = []
        for index in range(2):
            spec = make_pod_spec(
                f"job-{index}",
                duration_seconds=10.0,
                declared_epc_bytes=mib(10),
            )
            pod = Pod(spec, submitted_at=0.0)
            pod.mark_bound("s0", 1.0)
            startups.append(kubelet.admit(pod).startup_seconds)
        assert startups[1] < startups[0]

    def test_no_registry_means_no_pull_cost(self):
        kubelet = Kubelet(Node(NodeSpec.standard("w0")))
        spec = make_pod_spec(
            "job", duration_seconds=10.0, declared_memory_bytes=mib(100)
        )
        pod = Pod(spec, submitted_at=0.0)
        pod.mark_bound("w0", 1.0)
        assert kubelet.admit(pod).startup_seconds <= 0.001


class TestOrchestratorIntegration:
    def test_registry_propagates_to_kubelets(self):
        registry = ImageRegistry.with_paper_images()
        orchestrator = Orchestrator(paper_cluster(), registry=registry)
        pod = orchestrator.submit(
            make_pod_spec(
                "job", duration_seconds=10.0, declared_epc_bytes=mib(5)
            ),
            now=0.0,
        )
        result = orchestrator.scheduling_pass(BinpackScheduler(), now=1.0)
        _, startup = result.launched[0]
        assert startup > mib(390) / 125_000_000  # pull + SGX startup
        cache = orchestrator.kubelets[pod.node_name].image_cache
        assert SGX_BASE_IMAGE in cache.cached_images
