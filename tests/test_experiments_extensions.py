"""Extension experiments: SGX 2 dynamic memory and kubelet resizing."""

import pytest

from repro.cluster.node import Node, NodeSpec
from repro.errors import DriverError
from repro.experiments.ext_sgx2 import (
    format_ext_sgx2,
    generate_bursty_jobs,
    run_ext_sgx2,
)
from repro.orchestrator.api import make_pod_spec
from repro.orchestrator.kubelet import Kubelet
from repro.orchestrator.pod import Pod
from repro.units import mib, pages


class TestBurstyJobs:
    def test_deterministic(self):
        assert generate_bursty_jobs(seed=3) == generate_bursty_jobs(seed=3)

    def test_peaks_fit_one_node(self):
        for job in generate_bursty_jobs(seed=0):
            assert job.peak_pages < 23_936
            assert job.baseline_pages < job.peak_pages
            assert (
                job.burst_start_fraction + job.burst_length_fraction < 1.0
            )


class TestKubeletResize:
    def make_sgx2_kubelet(self):
        return Kubelet(Node(NodeSpec.sgx("s0", sgx_version=2)))

    def admitted_pod(self, kubelet, declared_mib=40.0, actual_mib=8.0):
        spec = make_pod_spec(
            "bursty",
            duration_seconds=60.0,
            declared_epc_bytes=mib(declared_mib),
            actual_epc_bytes=mib(actual_mib),
        )
        pod = Pod(spec, submitted_at=0.0)
        pod.mark_bound("s0", 1.0)
        assert kubelet.admit(pod).success
        return pod

    def test_grow_and_shrink_through_kubelet(self):
        kubelet = self.make_sgx2_kubelet()
        pod = self.admitted_pod(kubelet)
        before = kubelet.node.used_epc_pages()
        added = kubelet.grow_pod_epc(pod, pages(mib(16)))
        assert added == pages(mib(16))
        assert kubelet.node.used_epc_pages() == before + added
        kubelet.shrink_pod_epc(pod, pages(mib(16)))
        assert kubelet.node.used_epc_pages() == before

    def test_grow_on_sgx1_node_rejected(self):
        kubelet = Kubelet(Node(NodeSpec.sgx("s0", sgx_version=1)))
        pod = self.admitted_pod(kubelet)
        with pytest.raises(DriverError, match="dynamic"):
            kubelet.grow_pod_epc(pod, 100)

    def test_grow_unknown_pod_rejected(self):
        from repro.errors import NodeError

        kubelet = self.make_sgx2_kubelet()
        stranger = Pod(
            make_pod_spec("x", duration_seconds=1.0,
                          declared_epc_bytes=mib(1)),
            submitted_at=0.0,
        )
        with pytest.raises(NodeError):
            kubelet.grow_pod_epc(stranger, 10)

    def test_grow_past_declared_limit_denied(self):
        from repro.errors import EnclaveLimitExceededError

        kubelet = self.make_sgx2_kubelet()
        pod = self.admitted_pod(kubelet, declared_mib=10.0, actual_mib=8.0)
        with pytest.raises(EnclaveLimitExceededError):
            kubelet.grow_pod_epc(pod, pages(mib(8)))


class TestExtSgx2Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ext_sgx2(n_jobs=40, seed=0)

    def test_sgx2_finishes_earlier(self, result):
        assert result.makespan_speedup > 1.0

    def test_sgx2_waits_less(self, result):
        assert (
            result.sgx2.mean_wait_seconds < result.sgx1.mean_wait_seconds
        )

    def test_all_jobs_complete_in_both_modes(self, result):
        assert result.sgx1.completed == 40
        assert result.sgx2.completed == 40

    def test_only_sgx2_stalls_on_growth(self, result):
        assert result.sgx1.total_stall_seconds == 0.0

    def test_format(self, result):
        text = format_ext_sgx2(result)
        assert "SGX 1" in text and "SGX 2" in text
