"""Sanity checks tying constants back to the paper's arithmetic."""

import pytest

from repro import constants
from repro.units import gib, mib, pages


class TestEpcGeometry:
    def test_usable_pages_match_stated_count(self):
        # Sec. II: 93.5 MiB usable == 23 936 pages of 4 KiB.
        assert pages(constants.EPC_USABLE_BYTES) == (
            constants.EPC_USABLE_PAGES
        )

    def test_usable_below_total(self):
        assert constants.EPC_USABLE_BYTES < constants.EPC_TOTAL_BYTES

    def test_total_is_128mib(self):
        assert constants.EPC_TOTAL_BYTES == mib(128)


class TestClusterArithmetic:
    def test_memory_ratio_of_sec_vi_e(self):
        # Sec. VI-E: 144 GiB of RAM vs 187 MiB of EPC is "almost 3
        # orders of magnitude (788x)".
        total_ram = (
            2 * constants.STANDARD_NODE_MEMORY_BYTES
            + 2 * constants.SGX_NODE_MEMORY_BYTES
        )
        total_epc = 2 * constants.EPC_USABLE_BYTES
        assert total_ram == gib(144)
        assert total_ram / total_epc == pytest.approx(788.0, rel=0.01)

    def test_multiplier_ratio_of_sec_vi_e(self):
        # "the difference between the scaling multipliers is only half
        # of that (350x)".
        ratio = (
            constants.STANDARD_MEMORY_MULTIPLIER_BYTES
            / constants.SGX_MEMORY_MULTIPLIER_BYTES
        )
        assert ratio == pytest.approx(350.0, rel=0.01)

    def test_sgx_jobs_have_half_the_relative_memory(self):
        # The consequence the paper draws: SGX jobs see ~2x less
        # relative capacity, which drives Fig. 10's 2x gap.
        capacity_ratio = (
            2 * constants.STANDARD_NODE_MEMORY_BYTES
            + 2 * constants.SGX_NODE_MEMORY_BYTES
        ) / (2 * constants.EPC_USABLE_BYTES)
        multiplier_ratio = (
            constants.STANDARD_MEMORY_MULTIPLIER_BYTES
            / constants.SGX_MEMORY_MULTIPLIER_BYTES
        )
        assert capacity_ratio / multiplier_ratio == pytest.approx(
            2.25, rel=0.01
        )


class TestTraceScaling:
    def test_slice_is_one_hour(self):
        assert (
            constants.TRACE_SLICE_END_SECONDS
            - constants.TRACE_SLICE_START_SECONDS
            == 3600
        )

    def test_overallocator_share(self):
        # 44 of 663 jobs over-allocate (Sec. VI-F).
        share = (
            constants.TRACE_OVERALLOCATOR_COUNT
            / constants.TRACE_SCALED_JOB_COUNT
        )
        assert 0.05 < share < 0.08


class TestFigureTargets:
    def test_fig7_targets_cover_all_sizes(self):
        assert set(constants.FIG7_MAKESPAN_TARGETS) == {
            mib(32),
            mib(64),
            mib(128),
            mib(256),
        }

    def test_fig7_targets_decrease_with_epc(self):
        spans = [
            constants.FIG7_MAKESPAN_TARGETS[mib(s)]
            for s in (32, 64, 128, 256)
        ]
        assert spans == sorted(spans, reverse=True)

    def test_latency_model_constants(self):
        assert constants.PSW_STARTUP_SECONDS == pytest.approx(0.1)
        assert constants.EPC_ALLOC_SECONDS_PER_MIB_BELOW == pytest.approx(
            0.0016
        )
        assert constants.EPC_ALLOC_SECONDS_PER_MIB_ABOVE == pytest.approx(
            0.0045
        )
        assert constants.METRICS_WINDOW_SECONDS == 25.0
