"""Cluster construction and the paper's testbed inventory."""

import pytest

from repro.cluster.node import Node, NodeSpec
from repro.cluster.topology import Cluster, paper_cluster, uniform_cluster
from repro.errors import ClusterError
from repro.units import gib, mib


class TestPaperCluster:
    def test_inventory(self):
        cluster = paper_cluster()
        assert len(cluster) == 4
        assert len(cluster.standard_nodes) == 2
        assert len(cluster.sgx_nodes) == 2

    def test_total_epc_matches_paper_arithmetic(self):
        # Section VI-E: 2 x 93.5 MiB = 187 MiB of EPC.
        cluster = paper_cluster()
        total_bytes = cluster.total_epc_pages() * 4096
        assert total_bytes == pytest.approx(mib(187), rel=0.01)

    def test_total_memory_matches_paper_arithmetic(self):
        # Workers contribute 2 x 64 GiB + 2 x 8 GiB = 144 GiB.
        cluster = paper_cluster()
        assert cluster.total_capacity().memory_bytes == gib(144)

    def test_epc_size_parameter(self):
        cluster = paper_cluster(epc_total_bytes=mib(256))
        for node in cluster.sgx_nodes:
            assert node.spec.epc_total_bytes == mib(256)

    def test_enforcement_flag_propagates(self):
        cluster = paper_cluster(enforce_epc_limits=False)
        for node in cluster.sgx_nodes:
            assert not node.driver.enforce_limits


class TestClusterOperations:
    def test_duplicate_name_rejected(self):
        cluster = Cluster()
        cluster.add_node(Node(NodeSpec.standard("a")))
        with pytest.raises(ClusterError):
            cluster.add_node(Node(NodeSpec.standard("a")))

    def test_lookup(self):
        cluster = paper_cluster()
        assert cluster.node("worker-0").name == "worker-0"
        assert "worker-0" in cluster

    def test_lookup_unknown_rejected(self):
        with pytest.raises(ClusterError):
            paper_cluster().node("ghost")

    def test_remove(self):
        cluster = paper_cluster()
        removed = cluster.remove_node("worker-0")
        assert removed.name == "worker-0"
        assert "worker-0" not in cluster
        with pytest.raises(ClusterError):
            cluster.remove_node("worker-0")

    def test_iteration_order_is_registration_order(self):
        names = [node.name for node in paper_cluster()]
        assert names == [
            "worker-0",
            "worker-1",
            "sgx-worker-0",
            "sgx-worker-1",
        ]


class TestUniformCluster:
    def test_builds_count(self):
        cluster = uniform_cluster(3)
        assert len(cluster) == 3
        assert all(not n.sgx_capable for n in cluster)

    def test_sgx_factory(self):
        cluster = uniform_cluster(2, spec_factory=NodeSpec.sgx)
        assert len(cluster.sgx_nodes) == 2

    def test_zero_count_rejected(self):
        with pytest.raises(ClusterError):
            uniform_cluster(0)
