"""The priority subsystem's equivalence suite.

Two claims, both hypothesis-checked on random bursty traces:

* **disabled == oracle** — with ``preemption_policy="none"`` (the
  default) and all pods at the default priority, whole-replay results
  are bit-for-bit identical to a scenario that never mentions the
  policy knobs at all, across the periodic, event-driven and indexed
  engines.  The policy layer costs the paper's replays nothing.
* **engines agree under preemption** — with real priorities and the
  ``cheapest-victims`` planner enabled, the periodic, event-driven and
  indexed engines still produce identical pod lifecycles, eviction
  counts and pass outcomes: preemption composes with every engine.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Scenario
from repro.trace.borg import synthetic_scaled_trace
from repro.units import mib

replay_settings = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def bursty_trace(trace_seed, n_jobs):
    """A short-window trace: the queue backs up, so policies matter."""
    return synthetic_scaled_trace(
        seed=trace_seed,
        n_jobs=n_jobs,
        overallocators=max(1, n_jobs // 10),
        window_seconds=120.0,
    )


@given(
    trace_seed=st.integers(min_value=0, max_value=1_000),
    seed=st.integers(min_value=0, max_value=1_000),
    n_jobs=st.integers(min_value=10, max_value=40),
    sgx_fraction=st.sampled_from([0.5, 1.0]),
)
@replay_settings
def test_disabled_policy_is_bit_for_bit_the_oracle(
    trace_seed, seed, n_jobs, sgx_fraction
):
    trace = bursty_trace(trace_seed, n_jobs)
    plain = Scenario(
        trace=trace, sgx_fraction=sgx_fraction, seed=seed
    )
    # Knobs present but inert: extra classes, a lower threshold, the
    # explicit "none" planner.  Nothing may change.
    inert = plain.with_(
        preemption_policy="none",
        preemption_priority_threshold=1,
        priority_classes={"gold": 500},
    )
    baseline = plain.run().signature()
    assert inert.run().signature() == baseline
    for toggle in (
        {"event_driven": True},
        {"indexed_scheduling": True},
    ):
        assert plain.with_(**toggle).run().pod_signature() == (
            plain.run().pod_signature()
        )
        assert inert.with_(**toggle).run().pod_signature() == (
            plain.run().pod_signature()
        )


@given(
    trace_seed=st.integers(min_value=0, max_value=1_000),
    seed=st.integers(min_value=0, max_value=1_000),
    n_jobs=st.integers(min_value=15, max_value=40),
    policy=st.sampled_from(
        ["cheapest-victims", "lowest-priority-first"]
    ),
)
@replay_settings
def test_engines_agree_under_preemption(
    trace_seed, seed, n_jobs, policy
):
    trace = bursty_trace(trace_seed, n_jobs)
    base = Scenario(
        trace=trace,
        sgx_fraction=1.0,
        seed=seed,
        epc_total_bytes=mib(64),
        workload="priority-mix",
        workload_options={
            "high_fraction": 0.25,
            "high_priority": "latency-critical",
        },
        preemption_policy=policy,
    )
    periodic = base.run()
    event = base.with_(event_driven=True).run()
    indexed = base.with_(indexed_scheduling=True).run()
    both = base.with_(
        event_driven=True, indexed_scheduling=True
    ).run()
    reference = periodic.signature()
    for other in (event, indexed, both):
        assert other.pod_signature() == periodic.pod_signature()
        assert other.eviction_count == periodic.eviction_count
        assert other.preemption_count == periodic.preemption_count
    # Indexed mode shares the periodic pass grid, so its whole
    # signature — pass counts and the per-executed-pass wait-reason
    # aggregates included — must match outright.  (Event-driven modes
    # legitimately record fewer deferrals: skipped passes observe
    # nothing, exactly like their passes_executed counter.)
    assert indexed.wait_reasons == periodic.wait_reasons
    assert indexed.signature() == reference


def test_preemption_actually_fires_in_the_suite_regime():
    """Guard: the hypothesis regime above exercises real evictions."""
    trace = bursty_trace(7, 40)
    result = Scenario(
        trace=trace,
        sgx_fraction=1.0,
        seed=1,
        epc_total_bytes=mib(64),
        workload="priority-mix",
        workload_options={
            "high_fraction": 0.25,
            "high_priority": "latency-critical",
        },
        preemption_policy="cheapest-victims",
    ).run()
    assert result.preemption_count > 0
    assert result.eviction_count >= result.preemption_count
    # Victims are resubmitted, so every job still completes.
    names = {pod.spec.name for pod in result.metrics.pods}
    completed = {pod.spec.name for pod in result.metrics.succeeded}
    assert completed == names
