"""Tier-1 dogfood gate: the checker over this repository's own tree.

This is the test the acceptance criteria point at: delete
``__slots__`` from ``simulation/engine.py`` or add an unsorted set
iteration to ``scheduler/binpack.py`` and this fails, with the
finding's location and hint in the assertion message.
"""

import json
from pathlib import Path

import repro
from repro.analysis import load_baseline, run_checks

PACKAGE_ROOT = Path(repro.__file__).parent
BASELINE = Path(__file__).parent.parent / "repro-check-baseline.json"


def _format(findings):
    return "\n".join(
        f"  {f.location()} {f.rule}: {f.message} ({f.hint})"
        for f in findings
    )


class TestDogfood:
    def test_source_tree_is_clean(self):
        baseline = (
            load_baseline(BASELINE) if BASELINE.exists() else None
        )
        report = run_checks(PACKAGE_ROOT, baseline=baseline)
        assert report.clean, (
            f"repro check found {len(report.findings)} new "
            f"violation(s):\n{_format(report.findings)}"
        )

    def test_scan_actually_covered_the_tree(self):
        # Guard against a silently-empty scan reading the wrong root.
        report = run_checks(PACKAGE_ROOT)
        assert report.modules_checked > 50
        assert len(report.rules_run) >= 8

    def test_committed_baseline_is_empty(self):
        # The cleanup is done; the baseline must never regrow without
        # review.  (BASELINE is committed at the repo root.)
        document = json.loads(BASELINE.read_text())
        assert document["schema"] == "repro.check/v1"
        assert document["findings"] == []
