"""Property-based tests: EPC accounting invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.errors import EpcExhaustedError
from repro.sgx.epc import EnclavePageCache

page_counts = st.integers(min_value=1, max_value=30_000)


class TestAllocationProperties:
    @given(requests=st.lists(page_counts, max_size=30))
    def test_strict_mode_never_overcommits(self, requests):
        epc = EnclavePageCache()
        for index, pages in enumerate(requests):
            try:
                epc.allocate(f"pod-{index}", pages)
            except EpcExhaustedError:
                pass
        assert epc.allocated_pages <= epc.total_pages
        assert epc.free_pages == epc.total_pages - epc.allocated_pages

    @given(requests=st.lists(page_counts, max_size=30))
    def test_overcommit_mode_accepts_everything(self, requests):
        epc = EnclavePageCache(allow_overcommit=True)
        for index, pages in enumerate(requests):
            epc.allocate(f"pod-{index}", pages)
        assert epc.allocated_pages == sum(requests)

    @given(requests=st.lists(page_counts, min_size=1, max_size=20))
    def test_allocate_release_is_identity(self, requests):
        epc = EnclavePageCache(allow_overcommit=True)
        allocations = [
            epc.allocate(f"pod-{i}", pages)
            for i, pages in enumerate(requests)
        ]
        for allocation in allocations:
            epc.release(allocation)
        assert epc.allocated_pages == 0
        assert epc.free_pages == epc.total_pages

    @given(
        requests=st.lists(page_counts, min_size=1, max_size=20),
        data=st.data(),
    )
    def test_usage_by_owner_sums_to_allocated(self, requests, data):
        epc = EnclavePageCache(allow_overcommit=True)
        owners = data.draw(
            st.lists(
                st.sampled_from(["a", "b", "c"]),
                min_size=len(requests),
                max_size=len(requests),
            )
        )
        for owner, pages in zip(owners, requests, strict=True):
            epc.allocate(owner, pages)
        assert sum(epc.usage_by_owner().values()) == epc.allocated_pages

    @given(requests=st.lists(page_counts, min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_rebalance_residency_never_exceeds_capacity(self, requests):
        epc = EnclavePageCache(allow_overcommit=True)
        for index, pages in enumerate(requests):
            epc.allocate(f"pod-{index}", pages)
        epc.rebalance_residency()
        assert epc.resident_pages <= epc.total_pages
        for allocation in epc.allocations():
            assert 0 <= allocation.resident_pages <= allocation.pages


class EpcMachine(RuleBasedStateMachine):
    """Stateful check: interleaved allocate/release keep books balanced."""

    def __init__(self):
        super().__init__()
        self.epc = EnclavePageCache(allow_overcommit=True)
        self.live = []
        self.expected_total = 0

    @rule(pages=page_counts, owner=st.sampled_from(["a", "b", "c"]))
    def allocate(self, pages, owner):
        allocation = self.epc.allocate(owner, pages)
        self.live.append(allocation)
        self.expected_total += pages

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def release(self, data):
        index = data.draw(
            st.integers(min_value=0, max_value=len(self.live) - 1)
        )
        allocation = self.live.pop(index)
        self.epc.release(allocation)
        self.expected_total -= allocation.pages

    @precondition(lambda self: self.live)
    @rule(owner=st.sampled_from(["a", "b", "c"]))
    def release_owner(self, owner):
        freed = self.epc.release_owner(owner)
        self.live = [a for a in self.live if a.owner != owner]
        self.expected_total -= freed

    @invariant()
    def books_balance(self):
        assert self.epc.allocated_pages == self.expected_total
        assert self.epc.free_pages == max(
            0, self.epc.total_pages - self.expected_total
        )


TestEpcStateMachine = EpcMachine.TestCase
