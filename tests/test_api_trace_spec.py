"""Scenario/CLI trace= spec plumbing and the deprecated knob aliases."""

import json

import pytest

from repro.api import Scenario
from repro.cli import main
from repro.errors import RegistryError, SimulationError
from repro.simulation import ReplayConfig, replay_trace
from repro.trace import synthetic_scaled_trace

LEGACY = dict(trace_seed=7, trace_jobs=60, trace_overallocators=9)
SPEC = "borg-synth:jobs=60,overallocators=9,seed=7"


def _legacy_scenario(**extra):
    with pytest.warns(DeprecationWarning):
        return Scenario(**LEGACY, **extra)


class TestEquivalence:
    @pytest.mark.parametrize(
        "engine",
        [
            {},
            {"event_driven": True},
            {"indexed_scheduling": True},
        ],
        ids=["periodic", "event-driven", "indexed"],
    )
    def test_legacy_knobs_and_spec_run_identically(self, engine):
        legacy = _legacy_scenario(sgx_fraction=0.5, **engine).run()
        spec = Scenario(trace=SPEC, sgx_fraction=0.5, **engine).run()
        assert legacy.signature() == spec.signature()

    def test_legacy_knobs_build_identical_trace(self):
        with pytest.warns(DeprecationWarning):
            legacy = Scenario(trace_jobs=40)
        explicit = Scenario(trace="borg-synth:jobs=40")
        expected = synthetic_scaled_trace(
            seed=42, n_jobs=40, overallocators=round(40 * 44 / 663)
        )
        assert list(legacy.build_trace()) == list(expected)
        assert list(explicit.build_trace()) == list(expected)

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_replay_trace_accepts_spec_string(self):
        via_string = replay_trace(
            "borg-synth:seed=7,jobs=40", ReplayConfig(sgx_fraction=0.5)
        )
        via_trace = replay_trace(
            synthetic_scaled_trace(
                seed=7, n_jobs=40, overallocators=round(40 * 44 / 663)
            ),
            ReplayConfig(sgx_fraction=0.5),
        )
        assert (
            via_string.metrics.makespan_seconds
            == via_trace.metrics.makespan_seconds
        )
        assert len(via_string.plans) == len(via_trace.plans) == 40


class TestDeprecatedKnobs:
    def test_knobs_rewrite_into_spec_and_clear(self):
        scenario = _legacy_scenario()
        assert scenario.trace == SPEC
        assert scenario.trace_seed is None
        assert scenario.trace_jobs is None
        assert scenario.trace_overallocators is None

    def test_warning_names_replacement(self):
        with pytest.warns(DeprecationWarning, match="borg-synth:jobs=60"):
            Scenario(trace_jobs=60)

    def test_partial_knobs_rewrite(self):
        with pytest.warns(DeprecationWarning):
            scenario = Scenario(trace_seed=5)
        assert scenario.trace == "borg-synth:seed=5"

    def test_with_merges_knob_into_existing_spec(self):
        scenario = _legacy_scenario()
        with pytest.warns(DeprecationWarning):
            bumped = scenario.with_(trace_jobs=100)
        # Per-key merge: jobs updated, overallocators/seed retained —
        # exactly what dataclasses.replace did before the redesign.
        assert bumped.trace == (
            "borg-synth:jobs=100,overallocators=9,seed=7"
        )

    def test_knob_conflicts_with_trace_object(self, small_trace):
        with pytest.raises(SimulationError, match="explicit trace"):
            Scenario(trace=small_trace, trace_seed=5)

    def test_knob_conflicts_with_non_borg_spec(self):
        with pytest.raises(SimulationError, match="explicit trace spec"):
            Scenario(trace="synth-bursty:jobs=40", trace_seed=5)

    def test_validation_still_eager(self):
        with pytest.raises(SimulationError):
            Scenario(trace_jobs=0)
        with pytest.raises(SimulationError):
            Scenario(trace_overallocators=-1)


class TestSpecValidation:
    def test_unknown_adapter_fails_at_construction(self):
        with pytest.raises(RegistryError, match="warp-drive"):
            Scenario(trace="warp-drive:seed=1")

    def test_bad_grammar_fails_at_construction(self):
        from repro.errors import TraceError

        with pytest.raises(TraceError):
            Scenario(trace="Borg Synth!!")

    def test_bad_options_fail_at_build(self):
        scenario = Scenario(trace="borg-synth:warp=9")
        from repro.errors import TraceError

        with pytest.raises(TraceError, match="unknown option"):
            scenario.build_trace()

    def test_trace_object_passes_through(self, small_trace):
        assert Scenario(trace=small_trace).build_trace() is small_trace


class TestCli:
    def test_run_with_trace_spec(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--trace",
                    "synth-bursty:seed=3,jobs=50",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["submitted"] == 50

    def test_shorthands_still_work_without_warning(
        self, capsys, recwarn
    ):
        assert main(["run", "--jobs", "30", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["submitted"] == 30
        assert not [
            w
            for w in recwarn
            if issubclass(w.category, DeprecationWarning)
        ]

    def test_trace_conflicts_with_shorthands(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["run", "--trace", "borg-synth", "--trace-seed", "7"]
            )
        assert excinfo.value.code == 2
        assert "--trace conflicts" in capsys.readouterr().err

    def test_missing_trace_file_exits_2(self, capsys):
        # File-backed specs resolve lazily inside run(); the CLI must
        # still turn the TraceError into a usage error, not a
        # traceback.
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--trace", "borg-csv:path=/nope.csv"])
        assert excinfo.value.code == 2
        assert "not found" in capsys.readouterr().err

    def test_unknown_adapter_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--trace", "warp-drive:seed=1"])
        assert excinfo.value.code == 2
        assert "warp-drive" in capsys.readouterr().err

    def test_traces_command_lists_catalogue(self, capsys):
        assert main(["traces"]) == 0
        out = capsys.readouterr().out
        for name in ("borg-synth", "google2019", "synth-heavytail"):
            assert name in out
        assert "needs path=" in out

    def test_traces_json(self, capsys):
        assert main(["traces", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        names = [entry["name"] for entry in entries]
        assert "borg-synth" in names
        assert all(
            set(entry) == {"name", "summary", "spec_example", "needs_path"}
            for entry in entries
        )
