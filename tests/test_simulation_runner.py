"""Trace replay: end-to-end behaviour on a small trace."""

import pytest

from repro.errors import SimulationError
from repro.orchestrator.api import PodPhase
from repro.simulation.events import EventKind
from repro.simulation.runner import (
    ReplayConfig,
    make_scheduler,
    replay_trace,
)
from repro.units import mib
from repro.workload.malicious import MaliciousConfig


@pytest.fixture(scope="module")
def small_result(small_trace_module):
    return replay_trace(
        small_trace_module,
        ReplayConfig(scheduler="binpack", sgx_fraction=0.5, seed=1),
    )


@pytest.fixture(scope="module")
def small_trace_module():
    from repro.trace.borg import synthetic_scaled_trace

    return synthetic_scaled_trace(seed=7, n_jobs=40, overallocators=4)


class TestMakeScheduler:
    def test_known_names(self):
        for name in ("binpack", "spread", "kube-default"):
            scheduler = make_scheduler(ReplayConfig(scheduler=name))
            assert scheduler is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(SimulationError):
            make_scheduler(ReplayConfig(scheduler="random"))


class TestReplayCompleteness:
    def test_all_pods_terminal(self, small_result):
        for pod in small_result.metrics.pods:
            assert pod.phase.is_terminal, pod

    def test_all_jobs_completed_without_enforcement(self, small_result):
        # No limit enforcement (the default config): every job runs.
        assert len(small_result.metrics.succeeded) == 40

    def test_pod_count_matches_plans(self, small_result):
        assert len(small_result.metrics.pods) == len(small_result.plans)

    def test_makespan_at_least_trace_span(
        self, small_result, small_trace_module
    ):
        last_submit = max(j.submit_time for j in small_trace_module)
        assert small_result.metrics.makespan_seconds >= last_submit

    def test_queue_series_drains_to_zero(self, small_result):
        assert small_result.metrics.queue_series[-1].queued_pods == 0


class TestEventLogInvariants:
    def test_every_pod_flows_submit_bind_start_complete(self, small_result):
        for pod in small_result.metrics.succeeded:
            kinds = [e.kind for e in small_result.log.for_pod(pod.name)]
            assert kinds.index(EventKind.SUBMITTED) < kinds.index(
                EventKind.BOUND
            )
            assert kinds.index(EventKind.BOUND) < kinds.index(
                EventKind.STARTED
            )
            assert kinds.index(EventKind.STARTED) < kinds.index(
                EventKind.COMPLETED
            )

    def test_log_times_non_decreasing(self, small_result):
        times = [e.time for e in small_result.log]
        assert times == sorted(times)

    def test_counts_tally(self, small_result):
        counts = small_result.log.counts()
        assert counts[EventKind.SUBMITTED] == 40
        assert counts[EventKind.COMPLETED] == 40


class TestTimingSemantics:
    def test_waiting_time_includes_startup(self, small_result):
        for pod in small_result.metrics.succeeded:
            assert pod.started_at >= pod.bound_at
            assert pod.waiting_seconds >= 0.0

    def test_sgx_pods_pay_sgx_startup(self, small_result):
        sgx_pods = [
            p for p in small_result.metrics.succeeded if p.requires_sgx
        ]
        for pod in sgx_pods:
            # At least the 100 ms PSW boot separates bind from start.
            assert pod.started_at - pod.bound_at >= 0.099

    def test_runtime_without_contention_close_to_trace(
        self, small_result, small_trace_module
    ):
        durations = {
            f"std-job-{j.job_id}": j.duration for j in small_trace_module
        }
        for pod in small_result.metrics.succeeded:
            if pod.name in durations and pod.started_at is not None:
                runtime = pod.finished_at - pod.started_at
                assert runtime == pytest.approx(
                    durations[pod.name], rel=1e-6
                )


class TestDeterminism:
    def test_same_seed_same_outcome(self, small_trace_module):
        config = ReplayConfig(scheduler="binpack", sgx_fraction=0.5, seed=3)
        a = replay_trace(small_trace_module, config)
        b = replay_trace(small_trace_module, config)
        assert [
            (p.name, p.waiting_seconds, p.turnaround_seconds)
            for p in a.metrics.pods
        ] == [
            (p.name, p.waiting_seconds, p.turnaround_seconds)
            for p in b.metrics.pods
        ]


class TestEnforcementInReplay:
    def test_overallocators_killed_with_limits(self, small_trace_module):
        result = replay_trace(
            small_trace_module,
            ReplayConfig(
                scheduler="binpack",
                sgx_fraction=1.0,
                seed=1,
                enforce_epc_limits=True,
                epc_allow_overcommit=False,
            ),
        )
        failed = result.metrics.failed
        # The trace has 4 over-allocators; all are SGX jobs here.
        assert len(failed) == 4
        assert all(
            "limit" in (p.failure_reason or "").lower() for p in failed
        )

    def test_malicious_squatters_slow_honest_jobs(self, small_trace_module):
        base = replay_trace(
            small_trace_module,
            ReplayConfig(scheduler="binpack", sgx_fraction=1.0, seed=1),
        )
        squatted = replay_trace(
            small_trace_module,
            ReplayConfig(
                scheduler="binpack",
                sgx_fraction=1.0,
                seed=1,
                malicious=MaliciousConfig(epc_occupancy=0.5),
            ),
        )
        assert (
            squatted.metrics.mean_waiting_seconds()
            > base.metrics.mean_waiting_seconds()
        )

    def test_enforcement_kills_malicious_pods(self, small_trace_module):
        result = replay_trace(
            small_trace_module,
            ReplayConfig(
                scheduler="binpack",
                sgx_fraction=1.0,
                seed=1,
                enforce_epc_limits=True,
                epc_allow_overcommit=False,
                malicious=MaliciousConfig(epc_occupancy=0.5),
            ),
        )
        malicious = [
            p
            for p in result.metrics.pods
            if p.spec.labels.get("origin") == "malicious"
        ]
        assert malicious
        assert all(p.phase is PodPhase.FAILED for p in malicious)


class TestEpcSweep:
    def test_larger_epc_never_slower(self, small_trace_module):
        makespans = []
        for size in (64, 128, 256):
            result = replay_trace(
                small_trace_module,
                ReplayConfig(
                    scheduler="binpack",
                    sgx_fraction=1.0,
                    seed=1,
                    epc_total_bytes=mib(size),
                ),
            )
            makespans.append(result.metrics.makespan_seconds)
        assert makespans[0] >= makespans[1] >= makespans[2]


class TestRebalancerInReplay:
    def test_rebalancer_reduces_paging_excess(self, small_trace_module):
        def excess(result):
            return sum(
                (p.finished_at - p.started_at)
                - p.spec.workload.duration_seconds
                for p in result.metrics.succeeded
            )

        base = replay_trace(
            small_trace_module,
            ReplayConfig(scheduler="binpack", sgx_fraction=1.0, seed=1),
        )
        rebalanced = replay_trace(
            small_trace_module,
            ReplayConfig(
                scheduler="binpack",
                sgx_fraction=1.0,
                seed=1,
                rebalance_period=15.0,
            ),
        )
        # Over-allocators cause transient over-commit in both runs; the
        # rebalancer may only ever reduce the resulting paging time.
        assert excess(rebalanced) <= excess(base) + 1e-6
        assert base.migration_count == 0

    def test_rebalancer_disabled_by_default(self, small_trace_module):
        result = replay_trace(
            small_trace_module,
            ReplayConfig(scheduler="binpack", sgx_fraction=1.0, seed=1),
        )
        assert result.migration_count == 0


class TestFailureInjection:
    def test_sgx_node_crash_mid_replay(self, small_trace_module):
        """Crashing one SGX node mid-run loses no work permanently:
        every job name eventually completes on the survivors."""
        result = replay_trace(
            small_trace_module,
            ReplayConfig(
                scheduler="binpack",
                sgx_fraction=1.0,
                seed=1,
                node_failures=((600.0, "sgx-worker-0"),),
            ),
        )
        metrics = result.metrics
        completed_names = {p.name for p in metrics.succeeded}
        all_names = {p.spec.name for p in metrics.pods}
        assert completed_names == all_names  # replacements finished
        # Nothing ran on the dead node after the crash.
        for pod in metrics.succeeded:
            if pod.node_name == "sgx-worker-0":
                assert pod.finished_at <= 600.0 + 1e-6
        # Lost pods are recorded as failed alongside their replacements.
        lost = [
            p
            for p in metrics.failed
            if "lost" in (p.failure_reason or "")
        ]
        assert all(p.node_name == "sgx-worker-0" for p in lost)

    def test_crash_of_idle_standard_node_is_harmless(
        self, small_trace_module
    ):
        result = replay_trace(
            small_trace_module,
            ReplayConfig(
                scheduler="binpack",
                sgx_fraction=1.0,
                seed=1,
                node_failures=((600.0, "worker-0"),),
            ),
        )
        assert len(result.metrics.succeeded) == 40

    def test_makespan_grows_under_failure(self, small_trace_module):
        healthy = replay_trace(
            small_trace_module,
            ReplayConfig(scheduler="binpack", sgx_fraction=1.0, seed=1),
        )
        degraded = replay_trace(
            small_trace_module,
            ReplayConfig(
                scheduler="binpack",
                sgx_fraction=1.0,
                seed=1,
                node_failures=((300.0, "sgx-worker-0"),),
            ),
        )
        # Losing half the EPC capacity cannot speed the batch up.
        assert (
            degraded.metrics.makespan_seconds
            >= healthy.metrics.makespan_seconds - 1e-6
        )
