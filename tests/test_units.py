"""Unit conversions: bytes, pages, durations."""

import pytest

from repro.units import (
    EPC_PAGE_BYTES,
    bytes_to_gib,
    bytes_to_mib,
    fmt_bytes,
    fmt_duration,
    gib,
    hours,
    kib,
    mib,
    minutes,
    pages,
    pages_to_bytes,
    pages_to_mib,
)


class TestSizes:
    def test_kib(self):
        assert kib(1) == 1024

    def test_mib(self):
        assert mib(1) == 1024 * 1024

    def test_gib(self):
        assert gib(1) == 1024**3

    def test_fractional_mib(self):
        assert mib(93.5) == int(93.5 * 1024 * 1024)

    def test_bytes_to_mib_roundtrip(self):
        assert bytes_to_mib(mib(12)) == pytest.approx(12.0)

    def test_bytes_to_gib_roundtrip(self):
        assert bytes_to_gib(gib(3)) == pytest.approx(3.0)


class TestPages:
    def test_page_size_is_4kib(self):
        assert EPC_PAGE_BYTES == 4096

    def test_exact_page_count(self):
        assert pages(8192) == 2

    def test_partial_page_rounds_up(self):
        assert pages(8193) == 3

    def test_one_byte_needs_one_page(self):
        assert pages(1) == 1

    def test_zero_bytes_zero_pages(self):
        assert pages(0) == 0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            pages(-1)

    def test_usable_epc_matches_paper(self):
        # 93.5 MiB == 23 936 pages, as stated in Section II.
        assert pages(mib(93.5)) == 23_936

    def test_pages_to_bytes(self):
        assert pages_to_bytes(2) == 8192

    def test_pages_to_bytes_negative_rejected(self):
        with pytest.raises(ValueError):
            pages_to_bytes(-1)

    def test_pages_to_mib(self):
        assert pages_to_mib(256) == pytest.approx(1.0)


class TestDurations:
    def test_minutes(self):
        assert minutes(2) == 120.0

    def test_hours(self):
        assert hours(1.5) == 5400.0


class TestFormatting:
    def test_fmt_bytes_gib(self):
        assert fmt_bytes(gib(2)) == "2.0 GiB"

    def test_fmt_bytes_mib(self):
        assert fmt_bytes(mib(93)) == "93.0 MiB"

    def test_fmt_bytes_small(self):
        assert fmt_bytes(100) == "100 B"

    def test_fmt_duration_seconds(self):
        assert fmt_duration(12.3) == "12.3s"

    def test_fmt_duration_minutes(self):
        assert fmt_duration(125) == "2min 5s"

    def test_fmt_duration_hours(self):
        assert fmt_duration(3600 + 22 * 60) == "1h 22min"

    def test_fmt_duration_negative(self):
        assert fmt_duration(-30) == "-30.0s"
