"""Cross-feature integration: images + hybrid + migration + SGX 2.

Exercises feature combinations no single-module test touches, on one
orchestrator instance — the kind of interleaving a real deployment
produces.
"""


from repro.cluster.node import Node, NodeSpec
from repro.cluster.topology import paper_cluster
from repro.orchestrator.api import PodPhase, make_pod_spec
from repro.orchestrator.controller import Orchestrator
from repro.orchestrator.images import ImageRegistry
from repro.scheduler.binpack import BinpackScheduler
from repro.units import gib, mib, pages
from repro.workload.hybrid import hybrid_pod_spec


class TestImagesPlusMigration:
    def test_migrated_pod_needs_no_image_repull_if_cached(self):
        registry = ImageRegistry.with_paper_images()
        orchestrator = Orchestrator(paper_cluster(), registry=registry)
        scheduler = BinpackScheduler()

        # Warm both SGX nodes' caches with one pod each.
        warmers = []
        for index in range(2):
            warmers.append(
                orchestrator.submit(
                    make_pod_spec(
                        f"warm-{index}",
                        duration_seconds=30.0,
                        # 60 MiB each: binpack must split them across
                        # the two SGX nodes (2 x 60 > 93.5).
                        declared_epc_bytes=mib(60),
                    ),
                    now=0.0,
                )
            )
        result = orchestrator.scheduling_pass(scheduler, now=1.0)
        assert len(result.launched) == 2
        nodes_used = {pod.node_name for pod in warmers}
        assert len(nodes_used) == 2  # one warmer per SGX node
        for pod, _ in result.launched:
            orchestrator.start_pod(pod, now=1.5)
        pulls_after_warmup = registry.pull_count

        # Free the target by completing its warmer (the image cache
        # outlives the pod), then migrate the survivor across.
        survivor, leaver = warmers
        orchestrator.complete_pod(leaver, now=31.5)
        orchestrator.migrate_pod(survivor, leaver.node_name, now=40.0)
        assert survivor.node_name == leaver.node_name
        assert registry.pull_count == pulls_after_warmup

    def test_migration_preserves_epc_books_with_images_enabled(self):
        registry = ImageRegistry.with_paper_images()
        orchestrator = Orchestrator(paper_cluster(), registry=registry)
        pod = orchestrator.submit(
            make_pod_spec(
                "svc", duration_seconds=600.0, declared_epc_bytes=mib(30)
            ),
            now=0.0,
        )
        orchestrator.scheduling_pass(BinpackScheduler(), now=1.0)
        orchestrator.start_pod(pod, now=2.0)
        source = pod.node_name
        target = (
            "sgx-worker-1" if source == "sgx-worker-0" else "sgx-worker-0"
        )
        orchestrator.migrate_pod(pod, target, now=10.0)
        assert orchestrator.cluster.node(source).used_epc_pages() == 0
        assert orchestrator.cluster.node(
            target
        ).used_epc_pages() == pages(mib(30))


class TestHybridOnSgx2:
    def test_hybrid_pod_grows_its_enclave_on_sgx2(self):
        orchestrator = Orchestrator(paper_cluster(sgx_version=2))
        pod = orchestrator.submit(
            hybrid_pod_spec(
                "hy",
                duration_seconds=600.0,
                declared_epc_bytes=mib(40),
                declared_memory_bytes=gib(1),
            ),
            now=0.0,
        )
        orchestrator.scheduling_pass(BinpackScheduler(), now=1.0)
        orchestrator.start_pod(pod, now=2.0)
        kubelet = orchestrator.kubelets[pod.node_name]
        # The hybrid workload profile committed its full 40 MiB; shrink
        # during a quiet phase, then grow back under the declared limit.
        kubelet.shrink_pod_epc(pod, pages(mib(20)))
        node = orchestrator.cluster.node(pod.node_name)
        assert node.used_epc_pages() == pages(mib(20))
        kubelet.grow_pod_epc(pod, pages(mib(20)))
        assert node.used_epc_pages() == pages(mib(40))

    def test_hybrid_still_ram_bound_on_sgx2(self):
        orchestrator = Orchestrator(paper_cluster(sgx_version=2))
        scheduler = BinpackScheduler()
        for index in range(3):
            orchestrator.submit(
                hybrid_pod_spec(
                    f"hy-{index}",
                    duration_seconds=600.0,
                    declared_epc_bytes=mib(4),
                    declared_memory_bytes=gib(4),
                ),
                now=0.0,
            )
        result = orchestrator.scheduling_pass(scheduler, now=1.0)
        # Two 4 GiB pods fill one 8 GiB SGX node; the third goes to the
        # other node — dynamic EPC does nothing for the RAM bound.
        nodes = {a.node_name for a, _ in zip(
            [p for p, _ in result.launched], result.launched,
            strict=True,
        )}
        assert len(result.launched) == 3
        assert len(nodes) == 2


class TestNodeLifecyclePlusEnforcement:
    def test_replacement_node_inherits_enforcement(self):
        orchestrator = Orchestrator(paper_cluster(enforce_epc_limits=True))
        scheduler = BinpackScheduler()
        orchestrator.remove_node("sgx-worker-0", now=0.0)
        orchestrator.add_node(
            Node(NodeSpec.sgx("sgx-worker-2", enforce_epc_limits=True)),
            now=0.0,
        )
        liar = orchestrator.submit(
            make_pod_spec(
                "liar",
                duration_seconds=60.0,
                declared_epc_bytes=mib(1),
                actual_epc_bytes=mib(50),
            ),
            now=1.0,
        )
        # Fill the surviving original node so the liar lands on the
        # replacement, which must still kill it at EINIT.  The blocker
        # was submitted earlier, so FCFS places it first; it must leave
        # no declared room for the liar on sgx-worker-1.
        blocker = orchestrator.submit(
            make_pod_spec(
                "blocker",
                duration_seconds=600.0,
                declared_epc_bytes=mib(93),
            ),
            now=0.5,
        )
        result = orchestrator.scheduling_pass(scheduler, now=2.0)
        assert any(p is blocker for p, _ in result.launched)
        assert liar in result.killed
        assert liar.phase is PodPhase.FAILED
