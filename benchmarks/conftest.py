"""Benchmark harness configuration.

Every benchmark regenerates one table/figure of the paper and prints the
same rows/series the paper reports (run pytest with ``-s`` to see them;
they are also attached to the pytest-benchmark ``extra_info``).

Replays are deterministic and internally timed by the simulated clock,
so wall-clock benchmarking uses one round per figure: the interesting
output is the figure's data, the benchmark timing documents the cost of
regenerating it.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import default_trace


def pytest_addoption(parser):
    parser.addoption(
        "--full-figures",
        action="store_true",
        default=False,
        help="run figure benches on the full 663-job workload "
        "(default: also full; kept for symmetry with future scaling)",
    )


@pytest.fixture(scope="session")
def trace():
    """The 663-job evaluation workload, shared across benches."""
    return default_trace()


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark *fn* with a single round (replays are deterministic)."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
