"""Listing 1 bench: the scheduler's sliding-window InfluxQL query.

Measures the hot-path query of the paper's Listing 1 against a TSDB
populated with a realistic probe load (two SGX nodes, dozens of pods,
25 s window).  This is a true throughput benchmark (many rounds), unlike
the figure benches which replay once.
"""

from repro.monitoring.influxql import execute_query, parse_query
from repro.monitoring.tsdb import TimeSeriesDatabase

LISTING_1 = (
    "SELECT SUM(epc) AS epc FROM "
    '(SELECT MAX(value) AS epc FROM "sgx/epc" '
    "WHERE value <> 0 AND time >= now() - 25s "
    "GROUP BY pod_name, nodename) GROUP BY nodename"
)


def make_db(pods_per_node=30, samples_per_pod=60) -> TimeSeriesDatabase:
    db = TimeSeriesDatabase()
    for node in ("sgx-worker-0", "sgx-worker-1"):
        for pod in range(pods_per_node):
            for sample in range(samples_per_pod):
                db.write(
                    "sgx/epc",
                    value=float(100 + pod),
                    time=sample * 10.0,
                    tags={
                        "pod_name": f"pod-{node}-{pod}",
                        "nodename": node,
                    },
                )
    return db


def test_listing1_parse(benchmark):
    query = benchmark(parse_query, LISTING_1)
    assert query.group_by == ("nodename",)


def test_listing1_execute(benchmark):
    db = make_db()
    parsed = parse_query(LISTING_1)
    rows = benchmark(execute_query, parsed, db, 600.0)
    assert {row["nodename"] for row in rows} == {
        "sgx-worker-0",
        "sgx-worker-1",
    }
    # Each node sums its 30 pods' per-pod maxima.
    for row in rows:
        assert row["epc"] == sum(range(100, 130))
