"""Extension bench: hybrid trusted/untrusted jobs.

The paper's conclusion plans "hybrid processes running trusted and
untrusted code"; this bench sweeps their untrusted-memory share on the
paper's cluster and reports which resource binds — quantifying the
RAM/EPC imbalance of the SGX machines (8 GiB vs 93.5 MiB).
"""

from conftest import run_once
from repro.experiments.ext_hybrid import (
    format_ext_hybrid,
    run_ext_hybrid,
)


def test_ext_hybrid_jobs(benchmark):
    result = run_once(benchmark, run_ext_hybrid)
    print("\n[Extension] hybrid jobs: which resource binds the SGX nodes")
    print(format_ext_hybrid(result))
    for share, run in sorted(result.runs.items()):
        benchmark.extra_info[f"binds_at_{share:g}gib"] = (
            run.binding_resource
        )

    shares = sorted(result.runs)
    smallest = result.runs[shares[0]]
    largest = result.runs[shares[-1]]
    # Tiny untrusted parts leave the EPC the bottleneck (the paper's
    # enclave-only assumption); big ones flip the binding resource to
    # RAM and strand EPC capacity.
    assert smallest.binding_resource == "epc"
    assert largest.binding_resource == "memory"
    assert (
        largest.peak_epc_utilization < smallest.peak_epc_utilization
    )
    assert largest.makespan_seconds > smallest.makespan_seconds
