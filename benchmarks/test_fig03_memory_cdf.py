"""Fig. 3 bench: distribution of maximal memory usage in the trace."""

from conftest import run_once
from repro.experiments.fig3_memory_cdf import format_fig3, run_fig3


def test_fig03_memory_cdf(benchmark):
    result = run_once(benchmark, run_fig3)
    print("\n[Fig. 3] Google Borg trace: max memory usage CDF")
    print(format_fig3(result))
    benchmark.extra_info["cdf_at_0.1"] = result.share_below_tenth
    # Shape targets: capped at 0.5 of the reference machine, with the
    # bulk of jobs far below it (paper shows ~80 % under 0.1).
    assert result.max_fraction_covered == 100.0
    assert result.share_below_tenth > 55.0
    shares = [share for _, share in result.points]
    assert shares == sorted(shares)
