"""Extension bench: migration-based relief of EPC contention.

Section V-E motivates the per-process EPC metric with preemption and
migration "in scenarios of high contention"; the conclusion plans the
migration support.  This bench builds the contention scenario — a node
over-committed by under-declaring pods on a stock driver — and measures
what one rebalancing pass buys: the implied paging slowdown before and
after, versus the migration downtime it cost.
"""

from conftest import run_once
from repro.cluster.topology import paper_cluster
from repro.orchestrator.api import make_pod_spec
from repro.orchestrator.controller import Orchestrator
from repro.scheduler.binpack import BinpackScheduler
from repro.scheduler.rebalancer import EpcRebalancer
from repro.sgx.perf import SgxPerfModel
from repro.units import mib


def build_and_rebalance():
    orchestrator = Orchestrator(
        paper_cluster(enforce_epc_limits=False, epc_allow_overcommit=True)
    )
    scheduler = BinpackScheduler()
    for index in range(3):
        orchestrator.submit(
            make_pod_spec(
                f"liar-{index}",
                duration_seconds=600.0,
                declared_epc_bytes=mib(1),
                actual_epc_bytes=mib(40),
            ),
            now=0.0,
        )
    result = orchestrator.scheduling_pass(scheduler, now=1.0)
    for pod, _ in result.launched:
        orchestrator.start_pod(pod, now=1.5)
    perf = SgxPerfModel()
    source = result.launched[0][0].node_name
    ratio_before = orchestrator.kubelets[source].epc_overcommit_ratio()
    slowdown_before = perf.paging_slowdown(ratio_before)
    report = EpcRebalancer(orchestrator).rebalance(now=100.0)
    ratio_after = max(
        k.epc_overcommit_ratio() for k in orchestrator.kubelets.values()
    )
    slowdown_after = perf.paging_slowdown(ratio_after)
    return (
        ratio_before,
        slowdown_before,
        ratio_after,
        slowdown_after,
        report,
    )


def test_ext_rebalancer(benchmark):
    (
        ratio_before,
        slowdown_before,
        ratio_after,
        slowdown_after,
        report,
    ) = run_once(benchmark, build_and_rebalance)
    downtime = sum(a.downtime_seconds for a in report.actions)
    print("\n[Extension] migration-based EPC contention relief")
    print(
        f"  before: overcommit x{ratio_before:.2f} -> paging slowdown "
        f"x{slowdown_before:.1f}"
    )
    print(
        f"  after : overcommit x{ratio_after:.2f} -> paging slowdown "
        f"x{slowdown_after:.1f}"
    )
    print(
        f"  cost  : {len(report.actions)} migration(s), "
        f"{downtime * 1000:.0f} ms total downtime"
    )
    benchmark.extra_info["slowdown_before"] = slowdown_before
    benchmark.extra_info["slowdown_after"] = slowdown_after
    benchmark.extra_info["downtime_s"] = downtime

    # The contended node was paging (>1x); one pass fixes it for a
    # sub-second downtime — the trade Sec. V-E gestures at.
    assert slowdown_before > 2.0
    assert slowdown_after == 1.0
    assert 0.0 < downtime < 2.0
    assert report.unrelieved_nodes == []
