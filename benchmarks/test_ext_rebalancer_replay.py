"""Extension bench: periodic rebalancing during the full trace replay.

Runs the all-SGX evaluation workload with the migration-based EPC
rebalancer enabled every 15 s and measures how much transiently-
over-committed paging time it claws back, at what migration cost.
"""

from conftest import run_once
from repro.simulation.runner import ReplayConfig, replay_trace


def paging_excess_seconds(result) -> float:
    """Runtime inflation beyond the useful duration (paging time)."""
    return sum(
        (p.finished_at - p.started_at) - p.spec.workload.duration_seconds
        for p in result.metrics.succeeded
    )


def test_ext_rebalancer_replay(benchmark, trace):
    def run():
        base = replay_trace(
            trace,
            ReplayConfig(scheduler="binpack", sgx_fraction=1.0, seed=1),
        )
        rebalanced = replay_trace(
            trace,
            ReplayConfig(
                scheduler="binpack",
                sgx_fraction=1.0,
                seed=1,
                rebalance_period=15.0,
            ),
        )
        return base, rebalanced

    base, rebalanced = run_once(benchmark, run)
    base_excess = paging_excess_seconds(base)
    rebalanced_excess = paging_excess_seconds(rebalanced)
    print("\n[Extension] periodic rebalancing during the all-SGX replay")
    print(f"  paging excess without rebalancer: {base_excess:7.0f} s")
    print(
        f"  paging excess with rebalancer:     {rebalanced_excess:7.0f} s "
        f"({rebalanced.migration_count} migrations)"
    )
    benchmark.extra_info["base_excess_s"] = base_excess
    benchmark.extra_info["rebalanced_excess_s"] = rebalanced_excess
    benchmark.extra_info["migrations"] = rebalanced.migration_count

    # Rebalancing reclaims a meaningful share of paging time without
    # hurting completion.
    assert rebalanced_excess < 0.85 * base_excess
    assert rebalanced.migration_count > 0
    assert len(rebalanced.metrics.succeeded) == len(
        base.metrics.succeeded
    )
