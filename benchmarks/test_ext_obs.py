"""Smoke test: the observability bench harness runs end-to-end.

The full sweep (1000/2000 pods, the ``BENCH_obs.json`` baselines) is
``run_bench.py``'s job; tier-1 only proves the harness works on one
tiny configuration and that its headline invariants — a recorded run
is bit-for-bit the unobserved run and the ledger event count is
deterministic — hold there too.
"""

from run_bench import run_obs


class TestObsBench:
    def test_tiny_sweep_runs(self):
        report = run_obs(sizes=(40,), repeats=1)
        assert report["benchmark"] == "obs"
        (row,) = report["results"]
        assert row["pods"] == 40
        assert row["identical"] is True
        assert row["off_wall_s"] > 0
        assert row["on_wall_s"] > 0
        assert row["events"] > 0

    def test_event_count_is_deterministic(self):
        first = run_obs(sizes=(40,), repeats=1)["results"][0]
        second = run_obs(sizes=(40,), repeats=1)["results"][0]
        assert first["events"] == second["events"]
