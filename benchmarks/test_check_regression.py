"""Exit-code and comparison semantics of the bench regression gate.

The sweeps themselves are exercised by their own smoke tests; these
tests cover the gate's plumbing — argument validation, baseline
lookup, the tolerance band — with synthetic reports, so no sweep runs.
"""

import json

import pytest

import check_regression


class TestArguments:
    def test_unknown_benchmark_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            check_regression.main(["--benchmarks", "nope"])
        assert excinfo.value.code == 2

    def test_tolerance_out_of_range_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            check_regression.main(["--tolerance", "1.5"])
        assert excinfo.value.code == 2

    def test_missing_baseline_returns_2(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_regression, "REPO_ROOT", tmp_path)
        assert check_regression.main(["--quick"]) == 2


def write_baseline(tmp_path, speedup):
    (tmp_path / "BENCH_sched_scale.json").write_text(
        json.dumps(
            {
                "benchmark": "sched_scale",
                "results": [
                    {
                        "scheduler": "binpack",
                        "pods": 100,
                        "nodes": 10,
                        "speedup": speedup,
                        "identical": True,
                    }
                ],
            }
        )
    )


def fresh_row(speedup, identical=True):
    return {
        "results": [
            {
                "scheduler": "binpack",
                "pods": 100,
                "nodes": 10,
                "speedup": speedup,
                "identical": identical,
            }
        ]
    }


class TestCompare:
    def test_within_tolerance_passes(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_regression, "REPO_ROOT", tmp_path)
        write_baseline(tmp_path, speedup=10.0)
        failures = check_regression.compare(
            "sched_scale", fresh_row(6.0), tolerance=0.5
        )
        assert failures == []

    def test_below_floor_fails(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_regression, "REPO_ROOT", tmp_path)
        write_baseline(tmp_path, speedup=10.0)
        failures = check_regression.compare(
            "sched_scale", fresh_row(4.0), tolerance=0.5
        )
        assert len(failures) == 1
        assert "speedup 4.00" in failures[0]
        assert "floor 5.00" in failures[0]

    def test_broken_equivalence_always_fails(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_regression, "REPO_ROOT", tmp_path)
        write_baseline(tmp_path, speedup=10.0)
        failures = check_regression.compare(
            "sched_scale",
            fresh_row(100.0, identical=False),
            tolerance=0.5,
        )
        assert failures and "identical" in failures[0]

    def test_unknown_row_is_skipped_not_failed(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(check_regression, "REPO_ROOT", tmp_path)
        write_baseline(tmp_path, speedup=10.0)
        fresh = fresh_row(6.0)
        fresh["results"][0]["pods"] = 999
        failures = check_regression.compare(
            "sched_scale", fresh, tolerance=0.5
        )
        assert failures == []
