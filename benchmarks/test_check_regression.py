"""Exit-code and comparison semantics of the bench regression gate.

The sweeps themselves are exercised by their own smoke tests; these
tests cover the gate's plumbing — argument validation, baseline
lookup, the tolerance band — with synthetic reports, so no sweep runs.
"""

import json

import pytest

import check_regression


class TestArguments:
    def test_unknown_benchmark_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            check_regression.main(["--benchmarks", "nope"])
        assert excinfo.value.code == 2

    def test_tolerance_out_of_range_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            check_regression.main(["--tolerance", "1.5"])
        assert excinfo.value.code == 2

    def test_missing_baseline_returns_2(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_regression, "REPO_ROOT", tmp_path)
        assert check_regression.main(["--quick"]) == 2


def write_baseline(tmp_path, speedup):
    (tmp_path / "BENCH_sched_scale.json").write_text(
        json.dumps(
            {
                "benchmark": "sched_scale",
                "results": [
                    {
                        "scheduler": "binpack",
                        "pods": 100,
                        "nodes": 10,
                        "speedup": speedup,
                        "identical": True,
                    }
                ],
            }
        )
    )


def fresh_row(speedup, identical=True):
    return {
        "results": [
            {
                "scheduler": "binpack",
                "pods": 100,
                "nodes": 10,
                "speedup": speedup,
                "identical": identical,
            }
        ]
    }


class TestCompare:
    def test_within_tolerance_passes(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_regression, "REPO_ROOT", tmp_path)
        write_baseline(tmp_path, speedup=10.0)
        failures = check_regression.compare(
            "sched_scale", fresh_row(6.0), tolerance=0.5
        )
        assert failures == []

    def test_below_floor_fails(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_regression, "REPO_ROOT", tmp_path)
        write_baseline(tmp_path, speedup=10.0)
        failures = check_regression.compare(
            "sched_scale", fresh_row(4.0), tolerance=0.5
        )
        assert len(failures) == 1
        assert "speedup 4.00" in failures[0]
        assert "floor 5.00" in failures[0]

    def test_broken_equivalence_always_fails(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_regression, "REPO_ROOT", tmp_path)
        write_baseline(tmp_path, speedup=10.0)
        failures = check_regression.compare(
            "sched_scale",
            fresh_row(100.0, identical=False),
            tolerance=0.5,
        )
        assert failures and "identical" in failures[0]

    def test_unknown_row_is_skipped_not_failed(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(check_regression, "REPO_ROOT", tmp_path)
        write_baseline(tmp_path, speedup=10.0)
        fresh = fresh_row(6.0)
        fresh["results"][0]["pods"] = 999
        failures = check_regression.compare(
            "sched_scale", fresh, tolerance=0.5
        )
        assert failures == []


def write_sweep_baseline(tmp_path, completed, identical=True):
    """A baseline in the scenario layer's sweep-JSON shape."""
    (tmp_path / "BENCH_api_sweep.json").write_text(
        json.dumps(
            {
                "schema": "repro.sweep/1",
                "benchmark": "api_sweep",
                "workers": 4,
                "count": 1,
                "results": [
                    {
                        "scenario": "binpack/stress/sgx=0.5/seed=1",
                        "scheduler": "binpack",
                        "sgx_fraction": 0.5,
                        "completed": completed,
                        "parallel_identical": identical,
                    }
                ],
            }
        )
    )


def fresh_sweep_row(completed, identical=True):
    return {
        "schema": "repro.sweep/1",
        "count": 1,
        "results": [
            {
                "scheduler": "binpack",
                "sgx_fraction": 0.5,
                "completed": completed,
                "parallel_identical": identical,
            }
        ],
    }


class TestSweepJsonShape:
    """The gate reads the scenario layer's sweep JSON transparently."""

    def test_rows_from_either_shape(self):
        legacy = {"benchmark": "x", "results": [{"a": 1}]}
        sweep = {"schema": "repro.sweep/1", "results": [{"a": 1}]}
        assert check_regression.report_rows(legacy) == [{"a": 1}]
        assert check_regression.report_rows(sweep) == [{"a": 1}]

    def test_unsupported_shape_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            check_regression.report_rows(
                {"schema": "something/9", "results": []}
            )
        with pytest.raises(ValueError, match="results"):
            check_regression.report_rows({"benchmark": "x"})

    def test_sweep_baseline_within_tolerance(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_regression, "REPO_ROOT", tmp_path)
        write_sweep_baseline(tmp_path, completed=100)
        failures = check_regression.compare(
            "api_sweep", fresh_sweep_row(100), tolerance=0.5
        )
        assert failures == []

    def test_sweep_regression_detected(self, tmp_path, monkeypatch):
        monkeypatch.setattr(check_regression, "REPO_ROOT", tmp_path)
        write_sweep_baseline(tmp_path, completed=100)
        failures = check_regression.compare(
            "api_sweep", fresh_sweep_row(10), tolerance=0.5
        )
        assert len(failures) == 1
        assert "completed" in failures[0]

    def test_broken_parallel_equivalence_fails(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(check_regression, "REPO_ROOT", tmp_path)
        write_sweep_baseline(tmp_path, completed=100)
        failures = check_regression.compare(
            "api_sweep",
            fresh_sweep_row(100, identical=False),
            tolerance=0.5,
        )
        assert failures and "parallel_identical" in failures[0]
