"""Smoke test: the whole-replay wall bench harness runs end-to-end.

The full sweep (250–2000 pods, the ``BENCH_wall.json`` baselines) is
``run_bench.py``'s job; tier-1 only proves the harness works on one
tiny configuration and that its headline invariant — the three engines
agree bit for bit on pod lifecycles, makespan and the queue series —
holds there too.
"""

from run_bench import WALL_BASELINES, run_wall, wall_config


class TestWallBench:
    def test_tiny_sweep_runs(self):
        report = run_wall(sizes=(40,))
        assert report["benchmark"] == "wall"
        (row,) = report["results"]
        assert row["pods"] == 40
        assert row["engines_identical"] is True
        assert row["periodic_wall_s"] > 0
        assert row["event_wall_s"] > 0
        assert row["indexed_wall_s"] > 0
        # 40 pods has no pre-refactor baseline: no speedup claimed.
        assert "speedup" not in row

    def test_baseline_sizes_report_speedup_fields(self):
        # Baselines exist exactly for the committed sweep sizes, so
        # every BENCH_wall.json row carries the gated metric.
        assert set(WALL_BASELINES) == {250, 1000, 2000}
        for timings in WALL_BASELINES.values():
            assert set(timings) == {"periodic", "event", "indexed"}
            assert all(value > 0 for value in timings.values())

    def test_config_variants_differ_only_by_engine(self):
        periodic = wall_config(500)
        event = wall_config(500, event_driven=True)
        indexed = wall_config(500, indexed=True)
        assert not periodic.event_driven and not periodic.indexed_scheduling
        assert event.event_driven and not event.indexed_scheduling
        assert indexed.indexed_scheduling and not indexed.event_driven
        assert (
            periodic.standard_workers
            == event.standard_workers
            == indexed.standard_workers
        )
