"""Fig. 4 bench: distribution of job duration in the trace."""

from conftest import run_once
from repro.experiments.fig4_duration_cdf import format_fig4, run_fig4


def test_fig04_duration_cdf(benchmark):
    result = run_once(benchmark, run_fig4)
    print("\n[Fig. 4] Google Borg trace: job duration CDF")
    print(format_fig4(result))
    benchmark.extra_info["max_duration_s"] = result.max_duration
    # Shape target: "All jobs last at most 300 s."
    assert result.all_within_cap
    shares = [share for _, share in result.points]
    assert shares == sorted(shares)
