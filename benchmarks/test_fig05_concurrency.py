"""Fig. 5 bench: concurrently running jobs over the trace's first 24 h."""

from conftest import run_once
from repro.experiments.fig5_concurrency import format_fig5, run_fig5


def test_fig05_concurrency(benchmark):
    result = run_once(benchmark, run_fig5)
    print("\n[Fig. 5] Google Borg trace: concurrent jobs, first 24 h")
    print(format_fig5(result))
    low, high = result.band
    benchmark.extra_info["band_low"] = low
    benchmark.extra_info["band_high"] = high
    # Shape targets: the 125k-145k band, and an evaluation slice chosen
    # in a low-activity region of the day.
    assert 115_000 < low
    assert high < 155_000
    assert result.slice_mean() <= result.day_mean()
