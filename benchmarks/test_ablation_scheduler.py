"""Ablation benches: the design choices DESIGN.md calls out.

1. **Measured usage vs declared requests** — the paper's central design
   point: live probe data reclaims over-declared headroom.
2. **SGX-nodes-last ordering** — preserving scarce EPC nodes for the
   jobs that need them.
3. **FCFS skip vs strict head-of-line blocking** — the queue discipline.
"""

from conftest import run_once
from repro.simulation.runner import ReplayConfig, replay_trace
from repro.units import fmt_duration


def _summarise(label, result, benchmark):
    metrics = result.metrics
    print(
        f"  {label:32s} mean wait {metrics.mean_waiting_seconds():7.1f}s  "
        f"makespan {fmt_duration(metrics.makespan_seconds)}"
    )
    benchmark.extra_info[f"mean_wait[{label}]"] = (
        metrics.mean_waiting_seconds()
    )
    return metrics


def test_ablation_measured_vs_declared(benchmark, trace):
    """Measured-usage scheduling vs the declared-only baseline."""

    def run():
        measured = replay_trace(
            trace,
            ReplayConfig(scheduler="binpack", sgx_fraction=1.0, seed=1),
        )
        declared = replay_trace(
            trace,
            ReplayConfig(
                scheduler="kube-default", sgx_fraction=1.0, seed=1
            ),
        )
        return measured, declared

    measured, declared = run_once(benchmark, run)
    print("\n[Ablation] measured usage vs declared requests (100% SGX)")
    m = _summarise("binpack (measured)", measured, benchmark)
    d = _summarise("kube-default (declared)", declared, benchmark)
    assert m.mean_waiting_seconds() < 0.8 * d.mean_waiting_seconds()
    assert m.makespan_seconds < d.makespan_seconds


def test_ablation_sgx_nodes_last(benchmark, trace):
    """Preserving SGX nodes for SGX jobs in a mixed workload."""

    def run():
        preserved = replay_trace(
            trace,
            ReplayConfig(scheduler="binpack", sgx_fraction=0.5, seed=1),
        )
        mixed = replay_trace(
            trace,
            ReplayConfig(
                scheduler="binpack",
                sgx_fraction=0.5,
                seed=1,
                preserve_sgx_nodes=False,
            ),
        )
        return preserved, mixed

    preserved, mixed = run_once(benchmark, run)
    print("\n[Ablation] SGX-nodes-last node ordering (50% SGX)")
    p = _summarise("preserve SGX nodes (paper)", preserved, benchmark)
    n = _summarise("no preservation", mixed, benchmark)

    def sgx_mean(metrics):
        waits = metrics.waiting_times(
            [x for x in metrics.succeeded if x.requires_sgx]
        )
        return sum(waits) / len(waits)

    # Letting standard jobs squat SGX nodes cannot help SGX jobs.
    assert sgx_mean(p) <= sgx_mean(n) + 1.0


def test_ablation_strict_fcfs(benchmark, trace):
    """Kubernetes-like skipping vs strict head-of-line blocking."""

    def run():
        skip = replay_trace(
            trace,
            ReplayConfig(scheduler="binpack", sgx_fraction=1.0, seed=1),
        )
        strict = replay_trace(
            trace,
            ReplayConfig(
                scheduler="binpack",
                sgx_fraction=1.0,
                seed=1,
                strict_fcfs=True,
            ),
        )
        return skip, strict

    skip, strict = run_once(benchmark, run)
    print("\n[Ablation] FCFS with skipping vs strict head-of-line")
    s = _summarise("skip unschedulable (paper)", skip, benchmark)
    h = _summarise("strict head-of-line", strict, benchmark)
    # Head-of-line blocking wastes capacity whenever the oldest job is
    # a large enclave: it can only lengthen the batch.
    assert h.makespan_seconds >= 0.95 * s.makespan_seconds
    assert h.mean_waiting_seconds() >= 0.9 * s.mean_waiting_seconds()
