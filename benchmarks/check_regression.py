"""Bench regression gate: fresh sweeps vs the committed baselines.

Re-runs the ``run_bench`` sweeps and compares each row's headline
metric against the matching row of the committed ``BENCH_*.json``:

* ``state_cache``  — ``speedup``  (cached vs full-scan snapshot);
* ``event_sched``  — ``pass_reduction`` (passes skipped by triggers);
* ``sched_scale``  — ``speedup``  (indexed vs full-scan placement);
* ``api_sweep``    — ``completed`` (scenario-layer sweep outcomes),
  with the ``parallel_identical`` pool-vs-serial equivalence flag;
* ``preemption``   — ``p50_reduction`` (high-priority-tier waiting
  time, non-preemptive vs ``cheapest-victims``), with the
  ``disabled_identical`` flag proving priority-disabled runs stay
  bit-for-bit the oracle across engines;
* ``traces``       — ``completed`` (windowed-ingestion kept rows and
  synthetic-replay outcomes), with the ``deterministic`` flag proving
  every registered spec resolves and replays reproducibly;
* ``cells``        — ``speedup`` (two-level sharded replay vs the
  flat single-scheduler path at the quick 2k-pod point), with the
  ``deterministic`` flag proving every cells configuration repeats
  bit-for-bit;
* ``wall``         — ``speedup`` (whole-replay wall clock vs the
  pre-refactor baselines), with the ``engines_identical``
  cross-engine identity flag.  Unlike the advisory sweeps this gate
  runs as a *required* CI job: the hot-path rebuild's headline must
  not silently erode;
* ``obs``          — ``events`` (the decision ledger's deterministic
  record count at the gated trace size), with the ``identical`` flag
  proving a recorded run stays bit-for-bit the unobserved run.

Baselines come in two shapes, both accepted: the legacy
``{"benchmark": ..., "results": [...]}`` reports and the scenario
layer's structured sweep JSON (``{"schema": "repro.sweep/1", ...}``,
as emitted by ``repro sweep --json`` and ``SweepResult.to_json``).

A fresh metric may fall below its baseline by at most the tolerance
band (relative, default 50% — CI machines are noisy; the gate is after
order-of-magnitude regressions, not single-digit jitter).  Correctness
flags (``identical`` / ``bit_for_bit_identical``) must hold outright.

Exit status: 0 all good, 1 regression or broken equivalence, 2 usage
or missing baseline.  CI runs this as an *advisory* job::

    PYTHONPATH=src python benchmarks/check_regression.py --quick

``--quick`` restricts every sweep to its cheapest baseline-comparable
configuration (smallest sizes for state_cache/event_sched, a single
repeat of the headline sched_scale point), which keeps the job under a
minute while still catching the regressions that matter — an
accidental fallback to the slow path shows up at any size.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import run_bench

REPO_ROOT = Path(__file__).resolve().parent.parent

#: benchmark name -> (baseline file, headline metric, row key fields,
#: correctness flag or None)
GATES = {
    "state_cache": (
        "BENCH_state_cache.json", "speedup", ("pods",), None
    ),
    "event_sched": (
        "BENCH_event_sched.json",
        "pass_reduction",
        ("pods",),
        "bit_for_bit_identical",
    ),
    "sched_scale": (
        "BENCH_sched_scale.json",
        "speedup",
        ("scheduler", "pods", "nodes"),
        "identical",
    ),
    "api_sweep": (
        "BENCH_api_sweep.json",
        "completed",
        ("scheduler", "sgx_fraction"),
        "parallel_identical",
    ),
    "preemption": (
        "BENCH_preemption.json",
        "p50_reduction",
        ("pods",),
        "disabled_identical",
    ),
    "traces": (
        "BENCH_traces.json",
        "completed",
        ("case",),
        "deterministic",
    ),
    "cells": (
        "BENCH_cells.json",
        "speedup",
        ("pods", "cells"),
        "deterministic",
    ),
    "wall": (
        "BENCH_wall.json",
        "speedup",
        ("pods",),
        "engines_identical",
    ),
    "obs": (
        "BENCH_obs.json",
        "events",
        ("pods",),
        "identical",
    ),
}


def report_rows(report: dict) -> list:
    """The result rows of *report*, whichever shape it is in.

    Accepts the legacy bench shape (``benchmark`` + ``results``) and
    the scenario layer's sweep JSON (``schema: repro.sweep/...``).
    """
    schema = report.get("schema", "")
    if schema and not schema.startswith("repro.sweep/"):
        raise ValueError(f"unsupported report schema {schema!r}")
    if "results" not in report:
        raise ValueError(
            "report has no 'results'; expected a BENCH_*.json report "
            "or a repro.sweep/1 document"
        )
    return report["results"]


def fresh_reports(names, quick: bool) -> dict:
    """Run the selected sweeps; ``quick`` keeps each at its cheapest
    baseline-comparable point.  Only the sweeps in *names* execute —
    the others can cost minutes at full size."""
    reports = {}
    for name in names:
        if name == "state_cache":
            reports[name] = (
                run_bench.run(sizes=(250,), repeats=5)
                if quick
                else run_bench.run()
            )
        elif name == "event_sched":
            reports[name] = run_bench.run_event_sched(
                sizes=(250,) if quick else (250, 1000, 2000)
            )
        elif name == "preemption":
            # Quick mode keeps the 1000-pod headline row only; the
            # gated reduction must stay comparable to its baseline.
            reports[name] = run_bench.run_preemption(
                sizes=(1000,)
                if quick
                else run_bench.PREEMPTION_SIZES
            )
        elif name == "traces":
            # Quick mode shrinks the CSV but keeps the fixed window,
            # so the gated kept-row count still matches the baseline;
            # the synthetic replays are already small.
            reports[name] = run_bench.run_traces(
                csv_rows=20_000 if quick else run_bench.TRACES_CSV_ROWS
            )
        elif name == "cells":
            # Quick mode keeps the smallest size only: its rows
            # (2k pods at 1/4/16 cells) have baseline counterparts,
            # and the sharding overhead regression the gate is after
            # shows up at any scale.
            reports[name] = run_bench.run_cells(
                sizes=(2_000,)
                if quick
                else run_bench.CELLS_SIZES
            )
        elif name == "wall":
            # Quick mode keeps the smallest size; a hot-path fallback
            # to an allocation-heavy layout shows up at any scale.
            reports[name] = run_bench.run_wall(
                sizes=(250,) if quick else (250, 1000, 2000)
            )
        elif name == "obs":
            # Quick mode keeps the 1000-pod point with one repeat:
            # the gated metric (ledger event count) is deterministic
            # per size, and the identical flag holds at any scale.
            reports[name] = run_bench.run_obs(
                sizes=(1000,) if quick else (1000, 2000),
                repeats=1 if quick else 3,
            )
        elif name == "api_sweep":
            # Quick mode halves the grid and pool but keeps the trace
            # size: the gated metric (completed jobs) must stay
            # comparable against the committed baseline rows.
            reports[name] = run_bench.run_api_sweep(
                workers=2 if quick else run_bench.API_SWEEP_WORKERS,
                grid=(
                    {
                        "scheduler": ("binpack",),
                        "sgx_fraction": (0.0, 0.5),
                    }
                    if quick
                    else None
                ),
            )
        else:
            # Quick mode still runs the headline 2000x200 binpack point
            # (a smaller one would have no baseline row to compare
            # against) but with a single repeat instead of five.
            scheduler, pods, nodes, _ = run_bench.SCHED_SCALE_POINTS[0]
            reports[name] = run_bench.run_sched_scale(
                points=(
                    ((scheduler, pods, nodes, 1),)
                    if quick
                    else run_bench.SCHED_SCALE_POINTS
                )
            )
    return reports


def compare(name: str, fresh: dict, tolerance: float) -> list:
    """Failures of *fresh* against the committed baseline of *name*."""
    baseline_file, metric, keys, flag = GATES[name]
    baseline_path = REPO_ROOT / baseline_file
    baseline = json.loads(baseline_path.read_text())
    baseline_rows = {
        tuple(row[k] for k in keys): row
        for row in report_rows(baseline)
    }
    failures = []
    for row in report_rows(fresh):
        key = tuple(row[k] for k in keys)
        label = f"{name}[{', '.join(map(str, key))}]"
        if flag is not None and row[flag] is not True:
            failures.append(f"{label}: {flag} is {row[flag]!r}")
            continue
        base_row = baseline_rows.get(key)
        if base_row is None:
            print(f"  {label}: no baseline row, skipped")
            continue
        floor = base_row[metric] * (1.0 - tolerance)
        verdict = "ok" if row[metric] >= floor else "REGRESSION"
        print(
            f"  {label}: {metric} {row[metric]:.2f} "
            f"(baseline {base_row[metric]:.2f}, floor {floor:.2f}) "
            f"{verdict}"
        )
        if row[metric] < floor:
            failures.append(
                f"{label}: {metric} {row[metric]:.2f} < floor "
                f"{floor:.2f} (baseline {base_row[metric]:.2f})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare fresh bench runs against BENCH_*.json."
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed relative drop below baseline (default %(default)s)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="cheapest baseline-comparable configuration per sweep "
        "(advisory CI mode)",
    )
    parser.add_argument(
        "--benchmarks",
        default=",".join(GATES),
        help="comma-separated subset of: %(default)s",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    names = [n for n in args.benchmarks.split(",") if n]
    unknown = [n for n in names if n not in GATES]
    if unknown:
        parser.error(f"unknown benchmark(s): {', '.join(unknown)}")
    missing = [
        GATES[n][0]
        for n in names
        if not (REPO_ROOT / GATES[n][0]).exists()
    ]
    if missing:
        print(f"missing baseline file(s): {', '.join(missing)}")
        return 2

    reports = fresh_reports(names, args.quick)
    failures = []
    for name in names:
        print(f"{name}:")
        failures.extend(compare(name, reports[name], args.tolerance))
    if failures:
        print("\nREGRESSIONS:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nall benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
