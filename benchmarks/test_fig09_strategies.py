"""Fig. 9 bench: waiting time vs requested memory, spread vs binpack.

Paper targets: waits grow with the size of the request for SGX jobs;
standard jobs barely wait at any size; binpack handles big requests at
least as well as spread.
"""

from conftest import run_once
from repro.experiments.fig9_strategies import format_fig9, run_fig9


def test_fig09_strategies(benchmark, trace):
    result = run_once(benchmark, run_fig9, trace=trace)
    print("\n[Fig. 9] Mean waiting time by requested memory (50 % SGX)")
    print(format_fig9(result))
    for key, series in result.series.items():
        benchmark.extra_info[f"mean_wait_{key}"] = (
            series.overall_mean_wait()
        )

    for strategy in ("binpack", "spread"):
        sgx = result.get(strategy, sgx=True)
        std = result.get(strategy, sgx=False)
        # SGX jobs wait more than standard jobs overall (EPC is the
        # scarce resource)...
        assert sgx.overall_mean_wait() > std.overall_mean_wait()
        # ...and their biggest requests wait more than their smallest.
        assert sgx.bins[-1]["mean_wait"] > sgx.bins[0]["mean_wait"]
        # Standard jobs see low waits across all bins.
        assert all(b["mean_wait"] < 60.0 for b in std.bins)
