"""Smoke test: the indexed-scheduling bench harness imports and runs.

The full sweep (up to 5000 pods over 200 nodes) is ``run_bench.py``'s
job; tier-1 only proves the harness works end-to-end on tiny
configurations and that its headline invariant — outcome identity
between the full scan and the candidate index — holds there for every
strategy.
"""

from run_bench import build_sched_pass, run_sched_scale


class TestSchedScaleBench:
    def test_tiny_sweep_runs(self):
        report = run_sched_scale(
            points=(
                ("binpack", 60, 12, 1),
                ("spread", 30, 8, 1),
                ("kube-default", 60, 12, 1),
            )
        )
        assert report["benchmark"] == "sched_scale"
        assert len(report["results"]) == 3
        for row in report["results"]:
            assert row["identical"] is True
            assert row["placed"] + row["deferred"] <= row["pods"]
            assert row["indexed_ms"] > 0 and row["full_scan_ms"] > 0

    def test_pass_builder_mixes_hardware_and_workloads(self):
        views, pods = build_sched_pass(n_pods=120, n_nodes=8)
        assert len(views) == 8
        assert len(pods) == 120
        assert any(view.sgx_capable for view in views)
        assert any(not view.sgx_capable for view in views)
        assert any(pod.requires_sgx for pod in pods)
        assert any(not pod.requires_sgx for pod in pods)
        # Enclave demand oversubscribes the SGX slice of the cluster,
        # so the sweep exercises the deferred tail too.
        requested_epc = sum(
            pod.spec.resources.requests.epc_pages for pod in pods
        )
        epc_capacity = sum(view.capacity.epc_pages for view in views)
        assert requested_epc > epc_capacity

    def test_pass_builder_is_deterministic(self):
        views_a, pods_a = build_sched_pass(n_pods=40, n_nodes=6)
        views_b, pods_b = build_sched_pass(n_pods=40, n_nodes=6)
        assert [(v.name, v.used) for v in views_a] == [
            (v.name, v.used) for v in views_b
        ]
        assert [p.spec.resources.requests for p in pods_a] == [
            p.spec.resources.requests for p in pods_b
        ]
