"""Smoke test: the event-scheduling bench harness imports and runs.

The full sweep (250–2000 pods) is ``run_bench.py``'s job; tier-1 only
proves the harness works end-to-end on one tiny configuration and that
its headline invariants — bit-for-bit equivalence, fewer passes — hold
there too.
"""

from run_bench import event_sched_config, run_event_sched


class TestEventSchedBench:
    def test_tiny_sweep_runs(self):
        report = run_event_sched(sizes=(40,))
        assert report["benchmark"] == "event_sched"
        (row,) = report["results"]
        assert row["pods"] == 40
        assert row["bit_for_bit_identical"] is True
        assert row["event_passes"] < row["periodic_passes"]
        assert (
            row["event_passes"] + row["passes_skipped"]
            == row["periodic_passes"]
        )
        assert row["events_published"] > 0

    def test_config_scales_cluster_with_load(self):
        small = event_sched_config(250, event_driven=True)
        large = event_sched_config(2000, event_driven=True)
        assert small.event_driven and large.event_driven
        assert large.sgx_workers > small.sgx_workers
        assert large.standard_workers > small.standard_workers
