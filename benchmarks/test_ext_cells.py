"""Smoke test: the sharded-scheduling bench harness runs end-to-end.

The full sweep (2k-100k pods, the ``BENCH_cells.json`` baseline) is
``run_bench.py``'s job; tier-1 only proves the harness works on one
tiny configuration and that its headline invariants — repeat runs are
bit-for-bit identical and the sharded replay completes the same
workload as the flat oracle — hold there too.
"""

from run_bench import CELLS_COUNTS, CELLS_SIZES, cells_scenario, run_cells


class TestCellsBench:
    def test_tiny_sweep_runs(self):
        report = run_cells(sizes=(200,), counts=(2,))
        assert report["benchmark"] == "cells"
        assert report["cell_policy"] == "balanced"
        flat, sharded = report["results"]
        assert (flat["pods"], flat["cells"]) == (200, 1)
        assert (sharded["pods"], sharded["cells"]) == (200, 2)
        assert flat["speedup"] == 1.0
        assert flat["spillovers"] == 0
        for row in (flat, sharded):
            assert row["deterministic"] is True
            assert row["wall_s"] > 0
            assert row["nodes"] == 4
        # The sharded replay completes the same workload as the flat
        # oracle — sharding shifts wall clock, never outcomes.
        assert sharded["completed"] == flat["completed"] == 200

    def test_committed_sweep_shape(self):
        # The committed baseline covers the 2k quick point (the CI
        # gate's only fresh run) plus the scaling curve to 100k.
        assert CELLS_SIZES[0] == 2_000
        assert CELLS_SIZES[-1] == 100_000
        assert all(count > 1 for count in CELLS_COUNTS)

    def test_scenario_variants_differ_only_by_cells(self):
        flat = cells_scenario(2_000)
        sharded = cells_scenario(2_000, cells=4)
        assert flat.cells is None
        assert sharded.cells == 4
        assert flat.standard_workers == sharded.standard_workers == 16
        assert flat.scheduler == sharded.scheduler == "binpack"
