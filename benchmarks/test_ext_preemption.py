"""Smoke test: the preemption bench harness imports and runs.

The full sweep (1000–2000 pods) is ``run_bench.py``'s job; tier-1 only
proves the harness works end-to-end on one tiny configuration and that
its headline invariants — a real waiting-time reduction for the high
tier, evictions actually executed, the disabled run bit-for-bit equal
to the oracle — hold there too.
"""

from run_bench import preemption_scenario, run_preemption


class TestPreemptionBench:
    def test_tiny_sweep_runs(self):
        report = run_preemption(sizes=(120,))
        assert report["benchmark"] == "preemption"
        assert report["policy"] == "cheapest-victims"
        (row,) = report["results"]
        assert row["pods"] == 120
        assert row["disabled_identical"] is True
        assert row["preemptions"] > 0
        assert row["evictions"] >= row["preemptions"]
        assert row["preempt_high_p50_s"] < row["baseline_high_p50_s"]
        assert row["p50_reduction"] > 1.0
        # A couple of oversized enclaves are rejected outright at the
        # sweep's 64 MiB PRM; everything schedulable completes.
        assert row["completed"] >= 120 - 120 // 10

    def test_scenario_scales_cluster_with_load(self):
        small = preemption_scenario(500, "none")
        large = preemption_scenario(2000, "none")
        assert small.preemption_policy == "none"
        assert large.sgx_workers > small.sgx_workers
        assert large.workload == "priority-mix"
