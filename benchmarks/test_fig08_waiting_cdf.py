"""Fig. 8 bench: waiting-time CDFs for varying SGX job shares.

Paper targets: the no-SGX run waits little; 25-50 % mixes are close to
it; the pure-SGX run "goes off the chart" (longest wait 4696 s).
"""

from conftest import run_once
from repro.experiments.fig8_waiting_cdf import format_fig8, run_fig8


def test_fig08_waiting_cdf(benchmark, trace):
    result = run_once(benchmark, run_fig8, trace=trace)
    print("\n[Fig. 8] Waiting-time CDF by SGX job share (binpack)")
    print(format_fig8(result))
    for fraction, run in sorted(result.runs.items()):
        benchmark.extra_info[f"mean_wait_{int(fraction*100)}pct"] = (
            run.mean_wait
        )

    no_sgx = result.run_at(0.0)
    mix25 = result.run_at(0.25)
    mix50 = result.run_at(0.5)
    pure = result.run_at(1.0)

    # Moderate SGX shares stay near the no-SGX baseline...
    assert mix25.mean_wait < no_sgx.mean_wait + 30.0
    assert mix50.mean_wait < no_sgx.mean_wait + 60.0
    # ...while the pure-SGX run is in another regime entirely.
    assert pure.mean_wait > 5.0 * no_sgx.mean_wait
    assert 1000.0 < pure.max_wait < 10_000.0
