"""Fig. 7 bench: pending-queue series for simulated EPC sizes.

Paper targets: makespans of ~4 h 47 min (32 MiB), 2 h 47 min (64 MiB),
1 h 22 min (128 MiB) and 1 h (256 MiB, no contention).
"""

from conftest import run_once
from repro.experiments.fig7_epc_sizes import format_fig7, run_fig7
from repro.units import fmt_duration


def test_fig07_epc_sizes(benchmark, trace):
    result = run_once(benchmark, run_fig7, trace=trace)
    print("\n[Fig. 7] Pending EPC requests vs simulated EPC size")
    print(format_fig7(result))
    spans = result.makespans()
    for size, seconds in sorted(spans.items()):
        print(f"  {size:3d} MiB -> {fmt_duration(seconds)}")
        benchmark.extra_info[f"makespan_{size}mib_s"] = seconds

    # Shape targets: monotone decreasing; no contention at 256 MiB
    # (batch ends within ~the trace hour); halving the EPC roughly
    # doubles the drain time.
    assert spans[32] > spans[64] > spans[128] >= spans[256]
    assert spans[256] < 1.25 * 3600.0
    assert 1.5 < spans[64] / spans[128] < 3.0
    assert 1.3 < spans[32] / spans[64] < 3.0
    # Every queue drains to zero, as in the figure.
    for run in result.runs.values():
        assert run.queue_series[-1].pending_epc_pages == 0
