"""Fig. 10 bench: aggregate turnaround times vs the trace's useful time.

Paper targets: trace bar (94 h there) lower-bounds every run; binpack
beats or matches spread; SGX jobs need roughly twice the time of their
standard counterparts (210 h vs 111 h under binpack).
"""

from conftest import run_once
from repro.experiments.fig10_turnaround import format_fig10, run_fig10


def test_fig10_turnaround(benchmark, trace):
    result = run_once(benchmark, run_fig10, trace=trace)
    print("\n[Fig. 10] Total turnaround time by run")
    print(format_fig10(result))
    for key, hours in result.turnaround_hours.items():
        benchmark.extra_info[f"turnaround_{key}_h"] = hours
    benchmark.extra_info["trace_h"] = result.trace_hours

    # The trace's useful duration lower-bounds every run.
    for hours in result.turnaround_hours.values():
        assert hours >= result.trace_hours
    # SGX-only runs take roughly twice the standard-only runs.
    for strategy in ("binpack", "spread"):
        ratio = result.sgx_to_standard_ratio(strategy)
        assert 1.4 < ratio < 3.0
    # Spread is not better than binpack for the contended SGX workload.
    assert result.get("spread", "sgx") >= 0.95 * result.get(
        "binpack", "sgx"
    )
