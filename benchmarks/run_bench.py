"""State-cache benchmark runner: emits ``BENCH_state_cache.json``.

Measures the scheduler's per-pass snapshot latency — the two Listing-1
sliding-window queries behind ``ClusterStateService.build_views`` — with
the full InfluxQL window scan versus the incremental
:class:`~repro.monitoring.aggregate.WindowedAggregateCache`, across
cluster sizes.  Run it from the repo root::

    PYTHONPATH=src python benchmarks/run_bench.py

The JSON lands next to this repo's README so the perf trajectory of the
hot path is tracked from PR to PR.  The pytest wrapper
(``test_ext_state_cache.py``) reuses the same workload builder.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.constants import METRICS_WINDOW_SECONDS  # noqa: E402
from repro.monitoring.aggregate import WindowedAggregateCache  # noqa: E402
from repro.monitoring.heapster import MEASUREMENT_MEMORY  # noqa: E402
from repro.monitoring.probe import MEASUREMENT_EPC  # noqa: E402
from repro.monitoring.tsdb import TimeSeriesDatabase  # noqa: E402
from repro.scheduler.base import ClusterStateService  # noqa: E402

#: Simulated pass time; all windows are evaluated at this instant.
NOW = 600.0
#: In-window samples per pod per measurement (25 s window, ~6 s apart —
#: a denser probe cadence than the paper's 10 s default, as a scaled
#: deployment would configure).
SAMPLES_PER_POD = 5
#: History points per pod outside the window (pruned by the time bound).
HISTORY_PER_POD = 2
#: Fraction of pods that are SGX jobs with EPC samples.
SGX_FRACTION = 0.5


def build_state(n_pods: int, use_cache: bool):
    """A TSDB populated like a cluster of *n_pods* mid-replay."""
    db = TimeSeriesDatabase(retention_seconds=3600.0)
    cache = (
        WindowedAggregateCache(db, window_seconds=METRICS_WINDOW_SECONDS)
        if use_cache
        else None
    )
    n_nodes = max(4, n_pods // 100)
    for index in range(n_pods):
        tags = {
            "pod_name": f"pod-{index}",
            "nodename": f"node-{index % n_nodes}",
        }
        is_sgx = index < n_pods * SGX_FRACTION
        for h in range(HISTORY_PER_POD):
            t = NOW - 120.0 + 30.0 * h
            db.write(MEASUREMENT_MEMORY, value=1e6 + index, time=t, tags=tags)
        for s in range(SAMPLES_PER_POD):
            t = NOW - 24.0 + 6.0 * s
            db.write(
                MEASUREMENT_MEMORY,
                value=1e6 + index * 10.0 + s,
                time=t,
                tags=tags,
            )
            if is_sgx:
                db.write(
                    MEASUREMENT_EPC,
                    value=100.0 + index + s,
                    time=t,
                    tags=tags,
                )
    service = ClusterStateService(
        [], db, window_seconds=METRICS_WINDOW_SECONDS, cache=cache
    )
    return db, service


def time_snapshot(service: ClusterStateService, repeats: int) -> float:
    """Median seconds of one measured-usage snapshot at ``NOW``."""
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        service._measured_usage(NOW)
        timings.append(time.perf_counter() - start)
    return statistics.median(timings)


def run(sizes=(250, 1000, 2000), repeats=9) -> dict:
    results = []
    for n_pods in sizes:
        _, full_service = build_state(n_pods, use_cache=False)
        _, cached_service = build_state(n_pods, use_cache=True)
        full_s = time_snapshot(full_service, repeats)
        cached_s = time_snapshot(cached_service, repeats)
        results.append(
            {
                "pods": n_pods,
                "series": n_pods + int(n_pods * SGX_FRACTION),
                "full_scan_ms": round(full_s * 1e3, 4),
                "cached_ms": round(cached_s * 1e3, 4),
                "speedup": round(full_s / cached_s, 2),
            }
        )
    return {
        "benchmark": "state_cache",
        "window_seconds": METRICS_WINDOW_SECONDS,
        "samples_per_pod": SAMPLES_PER_POD,
        "sgx_fraction": SGX_FRACTION,
        "results": results,
    }


def main() -> None:
    report = run()
    out_path = Path(__file__).resolve().parent.parent / (
        "BENCH_state_cache.json"
    )
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    for row in report["results"]:
        print(
            f"{row['pods']:>6} pods: full {row['full_scan_ms']:.3f} ms  "
            f"cached {row['cached_ms']:.3f} ms  "
            f"speedup {row['speedup']:.1f}x"
        )
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
