"""Benchmark runner: emits ``BENCH_state_cache.json``,
``BENCH_event_sched.json``, ``BENCH_sched_scale.json``,
``BENCH_api_sweep.json``, ``BENCH_preemption.json``,
``BENCH_traces.json``, ``BENCH_cells.json``, ``BENCH_wall.json`` and
``BENCH_obs.json``.

Nine sweeps over the scheduling hot path:

* **state_cache** — the scheduler's per-pass snapshot latency (the two
  Listing-1 sliding-window queries behind
  ``ClusterStateService.build_views``) with the full InfluxQL window
  scan versus the incremental
  :class:`~repro.monitoring.aggregate.WindowedAggregateCache`;
* **event_sched** — whole trace replays, the paper's periodic
  scheduling loop versus the event-driven trigger mode
  (``ReplayConfig(event_driven=True)``): scheduling passes executed,
  wall-clock, and a bit-for-bit equivalence check of every pod's
  lifecycle timestamps, at 250–2000 pods;
* **sched_scale** — the placement loop *inside* one pass: a pending
  batch scheduled against a large cluster with the per-pod full scan
  versus the incremental node-candidate index
  (``Scheduler(indexed=True)``), with an outcome-identity check, at up
  to 5000 pods over 200 nodes;
* **api_sweep** — a scenario-layer sweep (``repro.api.Sweep``) run
  serially and over a 4-worker process pool, with a per-scenario
  bit-for-bit identity check, emitted in the structured
  ``repro.sweep/1`` JSON shape;
* **preemption** — the priority subsystem's headline: a two-tier
  tenant mix (``priority-mix`` workload) on a contended cluster,
  replayed with ``preemption_policy="none"`` versus the EPC-aware
  ``cheapest-victims`` planner, reporting the high-priority tier's
  p50/mean waiting-time reduction and the eviction counts — plus a
  ``disabled_identical`` flag proving the priority-disabled run is
  bit-for-bit the oracle across the periodic, event-driven and
  indexed engines;
* **traces** — the trace ecosystem: streaming ``borg-csv`` ingestion
  throughput over a 100k-row file with a peak-memory comparison of a
  windowed load versus the full load (the window must stay O(kept
  rows)), plus EPC-contended replays of two registered synthetic
  shapes (``synth-bursty``, ``synth-heavytail``) under binpack and
  spread with a spec-level determinism check;
* **cells** — the two-level sharded scheduler
  (``Scenario(cells=...)``): whole-replay wall clock of the flat
  single-scheduler path versus 4- and 16-cell sharding at 2k–100k
  pods on clusters scaling to 1600 nodes, with a per-row bit-for-bit
  determinism repeat — sharding wins biggest where the queue backs up
  (~2x at 10k pods) and the 16-cell row still beats the flat path at
  the 100k top, where per-node monitoring (untouched by sharding)
  dominates the wall;
* **wall** — whole-replay wall clock at 250–2000 pods for all three
  engines, reported as a speedup against the hard-coded pre-refactor
  baselines (:data:`WALL_BASELINES`, measured at the seed commit of
  the hot-path rebuild), with an ``engines_identical`` flag comparing
  pod lifecycles, makespan and the queue series across the periodic,
  event-driven and indexed runs;
* **obs** — the observability contract: the periodic wall sweep's
  1000/2000-pod points replayed with the decision ledger off and on
  (``Scenario(observe=ObserveConfig(ledger_path=...))``), reporting
  the wall overhead of a recorded run (must stay marginal — the
  disabled path is allocation-free, the enabled path streams compact
  JSONL), the deterministic ledger event count, and an ``identical``
  flag proving observation never changes the run.

Run from the repo root::

    PYTHONPATH=src python benchmarks/run_bench.py

The JSON lands next to this repo's README so the perf trajectory of the
hot path is tracked from PR to PR.  The pytest wrappers
(``test_ext_state_cache.py``, ``test_ext_event_sched.py``,
``test_ext_sched_scale.py``) reuse the same builders on tiny
configurations, and ``benchmarks/check_regression.py`` replays the
sweeps against the committed JSON baselines as a regression gate.
"""

from __future__ import annotations

import json
import os
import random
import statistics
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import Scenario, Sweep, rows_to_json  # noqa: E402
from repro.cluster.resources import ResourceVector  # noqa: E402
from repro.constants import (  # noqa: E402
    EPC_TOTAL_BYTES,
    METRICS_WINDOW_SECONDS,
)
from repro.monitoring.aggregate import WindowedAggregateCache  # noqa: E402
from repro.monitoring.heapster import MEASUREMENT_MEMORY  # noqa: E402
from repro.monitoring.probe import MEASUREMENT_EPC  # noqa: E402
from repro.monitoring.tsdb import TimeSeriesDatabase  # noqa: E402
from repro.orchestrator.api import make_pod_spec  # noqa: E402
from repro.orchestrator.pod import Pod  # noqa: E402
from repro.scheduler.base import (  # noqa: E402
    ClusterStateService,
    NodeView,
)
from repro.trace import resolve_trace  # noqa: E402
from repro.trace.borg import synthetic_scaled_trace  # noqa: E402
from repro.units import gib, mib, pages  # noqa: E402

#: Simulated pass time; all windows are evaluated at this instant.
NOW = 600.0
#: In-window samples per pod per measurement (25 s window, ~6 s apart —
#: a denser probe cadence than the paper's 10 s default, as a scaled
#: deployment would configure).
SAMPLES_PER_POD = 5
#: History points per pod outside the window (pruned by the time bound).
HISTORY_PER_POD = 2
#: Fraction of pods that are SGX jobs with EPC samples.
SGX_FRACTION = 0.5


def build_state(n_pods: int, use_cache: bool):
    """A TSDB populated like a cluster of *n_pods* mid-replay."""
    db = TimeSeriesDatabase(retention_seconds=3600.0)
    cache = (
        WindowedAggregateCache(db, window_seconds=METRICS_WINDOW_SECONDS)
        if use_cache
        else None
    )
    n_nodes = max(4, n_pods // 100)
    for index in range(n_pods):
        tags = {
            "pod_name": f"pod-{index}",
            "nodename": f"node-{index % n_nodes}",
        }
        is_sgx = index < n_pods * SGX_FRACTION
        for h in range(HISTORY_PER_POD):
            t = NOW - 120.0 + 30.0 * h
            db.write(MEASUREMENT_MEMORY, value=1e6 + index, time=t, tags=tags)
        for s in range(SAMPLES_PER_POD):
            t = NOW - 24.0 + 6.0 * s
            db.write(
                MEASUREMENT_MEMORY,
                value=1e6 + index * 10.0 + s,
                time=t,
                tags=tags,
            )
            if is_sgx:
                db.write(
                    MEASUREMENT_EPC,
                    value=100.0 + index + s,
                    time=t,
                    tags=tags,
                )
    service = ClusterStateService(
        [], db, window_seconds=METRICS_WINDOW_SECONDS, cache=cache
    )
    return db, service


def time_snapshot(service: ClusterStateService, repeats: int) -> float:
    """Median seconds of one measured-usage snapshot at ``NOW``."""
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        service._measured_usage(NOW)
        timings.append(time.perf_counter() - start)
    return statistics.median(timings)


def run(sizes=(250, 1000, 2000), repeats=9) -> dict:
    results = []
    for n_pods in sizes:
        _, full_service = build_state(n_pods, use_cache=False)
        _, cached_service = build_state(n_pods, use_cache=True)
        full_s = time_snapshot(full_service, repeats)
        cached_s = time_snapshot(cached_service, repeats)
        results.append(
            {
                "pods": n_pods,
                "series": n_pods + int(n_pods * SGX_FRACTION),
                "full_scan_ms": round(full_s * 1e3, 4),
                "cached_ms": round(cached_s * 1e3, 4),
                "speedup": round(full_s / cached_s, 2),
            }
        )
    return {
        "benchmark": "state_cache",
        "window_seconds": METRICS_WINDOW_SECONDS,
        "samples_per_pod": SAMPLES_PER_POD,
        "sgx_fraction": SGX_FRACTION,
        "results": results,
    }


#: Reconcile interval of the sweep: a production control plane reacts
#: within ~a second, not the paper testbed's relaxed default — and the
#: tighter the loop, the more of its wake-ups find nothing changed,
#: which is precisely the waste the trigger subsystem removes.
EVENT_SCHED_PERIOD_SECONDS = 1.0


def event_sched_config(n_pods: int, event_driven: bool) -> Scenario:
    """One scenario of the periodic-vs-event sweep (sans trace).

    The cluster scales with the workload (roughly one worker pair per
    125 pods) so the sweep measures scheduling-loop cost, not a
    5-node testbed grinding through a month-long backlog.
    """
    workers = max(2, n_pods // 125)
    return Scenario(
        scheduler="binpack",
        sgx_fraction=SGX_FRACTION,
        seed=1,
        event_driven=event_driven,
        scheduler_period=EVENT_SCHED_PERIOD_SECONDS,
        standard_workers=workers,
        sgx_workers=workers,
    )


def run_event_sched(sizes=(250, 1000, 2000)) -> dict:
    """Replay each size periodically and event-driven; compare."""
    results = []
    for n_pods in sizes:
        trace = synthetic_scaled_trace(
            seed=7, n_jobs=n_pods, overallocators=n_pods // 10
        )
        start = time.perf_counter()
        periodic = event_sched_config(n_pods, False).with_(
            trace=trace
        ).run()
        periodic_s = time.perf_counter() - start
        start = time.perf_counter()
        event = event_sched_config(n_pods, True).with_(trace=trace).run()
        event_s = time.perf_counter() - start
        results.append(
            {
                "pods": n_pods,
                "periodic_passes": periodic.passes_executed,
                "event_passes": event.passes_executed,
                "passes_skipped": event.passes_skipped,
                "pass_reduction": round(
                    periodic.passes_executed
                    / max(1, event.passes_executed),
                    2,
                ),
                "periodic_wall_s": round(periodic_s, 3),
                "event_wall_s": round(event_s, 3),
                "wall_speedup": round(periodic_s / event_s, 2),
                "events_published": event.events_published,
                "events_coalesced": event.events_coalesced,
                "makespan_s": round(periodic.metrics.makespan_seconds, 3),
                "bit_for_bit_identical": (
                    periodic.pod_signature() == event.pod_signature()
                    and periodic.metrics.makespan_seconds
                    == event.metrics.makespan_seconds
                ),
            }
        )
    return {
        "benchmark": "event_sched",
        "sgx_fraction": SGX_FRACTION,
        "scheduler_period_seconds": EVENT_SCHED_PERIOD_SECONDS,
        "results": results,
    }


#: Every Nth node in the sched_scale cluster carries SGX.
SCHED_SCALE_SGX_STRIDE = 4


def build_sched_pass(n_pods: int, n_nodes: int, seed: int = 3):
    """One pass's inputs: *n_nodes* views and a *n_pods* pending batch.

    Mirrors a scaled cluster mid-replay: a quarter of the nodes carry
    SGX, every node already runs a random measured load, and the
    pending queue mixes standard pods (memory-bound) with enclave pods
    (EPC-bound).  The batch intentionally oversubscribes the cluster so
    the sweep exercises both the placement path and the
    everything-deferred tail of a saturated pass.
    """
    rng = random.Random(seed)
    epc_pages = pages(EPC_TOTAL_BYTES)
    views = []
    for i in range(n_nodes):
        sgx = i % SCHED_SCALE_SGX_STRIDE == 0
        capacity = ResourceVector(
            cpu_millicores=16000,
            memory_bytes=gib(32) if sgx else gib(64),
            epc_pages=epc_pages if sgx else 0,
        )
        used = ResourceVector(
            cpu_millicores=rng.randrange(0, 4000),
            memory_bytes=rng.randrange(0, gib(8)),
            epc_pages=rng.randrange(0, epc_pages // 4) if sgx else 0,
        )
        views.append(
            NodeView(
                name=f"node-{i:04d}",
                sgx_capable=sgx,
                capacity=capacity,
                used=used,
                committed=used,
            )
        )
    pods = []
    for i in range(n_pods):
        if rng.random() < SGX_FRACTION:
            spec = make_pod_spec(
                f"enclave-{i:05d}",
                duration_seconds=60.0,
                declared_epc_bytes=mib(rng.choice((8, 16, 32, 64))),
            )
        else:
            spec = make_pod_spec(
                f"standard-{i:05d}",
                duration_seconds=60.0,
                declared_memory_bytes=gib(rng.choice((1, 2, 4, 8))),
            )
        pods.append(Pod(spec, submitted_at=float(i)))
    return views, pods


def _clone_views(views):
    return [
        NodeView(
            name=view.name,
            sgx_capable=view.sgx_capable,
            capacity=view.capacity,
            used=view.used,
            committed=view.committed,
        )
        for view in views
    ]


def _outcome_signature(outcome):
    return (
        [(a.pod.name, a.node_name) for a in outcome.assignments],
        [pod.name for pod in outcome.unschedulable],
        [pod.name for pod in outcome.deferred],
    )


def time_sched_pass(scheduler_name, indexed, views, pods, repeats):
    """Median seconds of one full batch pass, plus its outcome."""
    scheduler = Scenario(
        scheduler=scheduler_name, indexed_scheduling=indexed
    ).build_scheduler()
    timings = []
    outcome = None
    for _ in range(repeats):
        pass_views = _clone_views(views)
        start = time.perf_counter()
        outcome = scheduler.schedule(pods, pass_views, now=600.0)
        timings.append(time.perf_counter() - start)
    return statistics.median(timings), outcome


#: (scheduler, pods, nodes, repeats): the headline row is binpack at
#: 2000×200 (the ISSUE's ≥5x target); 5000 pods shows the trend and the
#: spread/kube rows show the index helps every strategy.  Spread stays
#: smaller because the *oracle* is quadratic in nodes per pod.
SCHED_SCALE_POINTS = (
    ("binpack", 2000, 200, 5),
    ("binpack", 5000, 200, 3),
    ("kube-default", 2000, 200, 5),
    ("spread", 600, 60, 3),
)


def run_sched_scale(points=SCHED_SCALE_POINTS) -> dict:
    """Per-pass placement latency: full scan vs candidate index."""
    results = []
    for scheduler_name, n_pods, n_nodes, repeats in points:
        views, pods = build_sched_pass(n_pods, n_nodes)
        full_s, full_outcome = time_sched_pass(
            scheduler_name, False, views, pods, repeats
        )
        indexed_s, indexed_outcome = time_sched_pass(
            scheduler_name, True, views, pods, repeats
        )
        results.append(
            {
                "scheduler": scheduler_name,
                "pods": n_pods,
                "nodes": n_nodes,
                "placed": len(full_outcome.assignments),
                "deferred": len(full_outcome.deferred),
                "full_scan_ms": round(full_s * 1e3, 3),
                "indexed_ms": round(indexed_s * 1e3, 3),
                "speedup": round(full_s / indexed_s, 2),
                "identical": (
                    _outcome_signature(full_outcome)
                    == _outcome_signature(indexed_outcome)
                ),
            }
        )
    return {
        "benchmark": "sched_scale",
        "sgx_fraction": SGX_FRACTION,
        "sgx_node_fraction": round(1 / SCHED_SCALE_SGX_STRIDE, 4),
        "results": results,
    }


#: The api_sweep configuration: a 2x2 scheduler x SGX-share grid over
#: a scaled trace, executed serially and with a 4-worker pool.  The
#: trace is sized so each replay takes ~1-2 s: long enough that the
#: pool amortises its startup, short enough for the CI quick gate.
API_SWEEP_TRACE_JOBS = 1000
API_SWEEP_WORKERS = 4
API_SWEEP_GRID = {
    "scheduler": ("binpack", "spread"),
    "sgx_fraction": (0.0, 0.5),
}


def run_api_sweep(
    workers=API_SWEEP_WORKERS,
    trace_jobs=API_SWEEP_TRACE_JOBS,
    grid=None,
) -> dict:
    """Serial vs parallel execution of one scenario sweep.

    Emits the scenario layer's structured sweep JSON (schema
    ``repro.sweep/1``) augmented with serial/parallel wall clock and a
    per-row ``parallel_identical`` flag: every scenario's pool-worker
    result must be bit-for-bit identical to the serial one.
    """
    cluster_workers = max(2, trace_jobs // 125)
    base = Scenario(
        trace=(
            f"borg-synth:seed=7,jobs={trace_jobs},"
            f"overallocators={max(1, trace_jobs // 10)}"
        ),
        seed=1,
        standard_workers=cluster_workers,
        sgx_workers=cluster_workers,
    )
    sweep = Sweep(base, grid=grid or API_SWEEP_GRID, name="api_sweep")
    start = time.perf_counter()
    serial = sweep.run(workers=1)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = sweep.run(workers=workers)
    parallel_s = time.perf_counter() - start
    rows = []
    for serial_run, parallel_run in zip(serial, parallel, strict=True):
        row = serial_run.to_row()
        row["parallel_identical"] = (
            serial_run.signature() == parallel_run.signature()
        )
        rows.append(row)
    # One formatter owns the sweep-JSON envelope; wall clock is
    # informational (the speedup tracks the host's actual parallelism,
    # cpu_count), while the *gated* facts are the deterministic
    # outcomes and the identity flag.
    return json.loads(
        rows_to_json(
            rows,
            benchmark="api_sweep",
            workers=workers,
            cpu_count=os.cpu_count(),
            serial_wall_s=round(serial_s, 3),
            parallel_wall_s=round(parallel_s, 3),
            parallel_speedup=round(serial_s / parallel_s, 2),
        )
    )


#: The preemption sweep's tenant mix: a small latency-critical tenant
#: over a bulk best-effort population, all-SGX so the 64 MiB PRM is
#: the contended resource.
PREEMPTION_SIZES = (1000, 2000)
PREEMPTION_HIGH_FRACTION = 0.15
PREEMPTION_EPC_MIB = 64
PREEMPTION_WINDOW_SECONDS = 900.0


def _tier_waits(result, tier):
    return [
        pod.waiting_seconds
        for pod in result.metrics.succeeded
        if pod.spec.labels.get("tier") == tier
        and pod.waiting_seconds is not None
    ]


def preemption_scenario(n_pods: int, policy: str) -> Scenario:
    """One contended two-tier scenario (sans trace).

    Roughly one worker pair per 250 pods: the burst window outpaces
    the cluster, the queue backs up and the high tier either waits
    behind the batch tier (``none``) or evicts its way in.
    """
    workers = max(2, n_pods // 250)
    return Scenario(
        scheduler="binpack",
        sgx_fraction=1.0,
        seed=1,
        epc_total_bytes=mib(PREEMPTION_EPC_MIB),
        standard_workers=workers,
        sgx_workers=workers,
        indexed_scheduling=True,
        workload="priority-mix",
        workload_options={
            "high_fraction": PREEMPTION_HIGH_FRACTION,
            "high_priority": "latency-critical",
        },
        preemption_policy=policy,
    )


def run_preemption(sizes=PREEMPTION_SIZES) -> dict:
    """High-priority waiting time, non-preemptive vs cheapest-victims."""
    results = []
    for n_pods in sizes:
        trace = synthetic_scaled_trace(
            seed=7,
            n_jobs=n_pods,
            overallocators=n_pods // 10,
            window_seconds=PREEMPTION_WINDOW_SECONDS,
        )
        baseline = preemption_scenario(n_pods, "none").with_(
            trace=trace
        )
        disabled = baseline.run()
        preempting = preemption_scenario(
            n_pods, "cheapest-victims"
        ).with_(trace=trace).run()
        # Equivalence fact: the priority-disabled run equals the
        # periodic full-scan oracle (and the event-driven engine) bit
        # for bit — the policy layer costs disabled replays nothing.
        oracle = baseline.with_(indexed_scheduling=False).run()
        event = baseline.with_(event_driven=True).run()
        disabled_identical = (
            disabled.pod_signature() == oracle.pod_signature()
            and event.pod_signature() == oracle.pod_signature()
            and disabled.metrics.makespan_seconds
            == oracle.metrics.makespan_seconds
        )
        base_high = _tier_waits(disabled, "high")
        fast_high = _tier_waits(preempting, "high")
        base_p50 = statistics.median(base_high)
        fast_p50 = statistics.median(fast_high)
        results.append(
            {
                "pods": n_pods,
                "high_tier_pods": len(base_high),
                "baseline_high_p50_s": round(base_p50, 3),
                "preempt_high_p50_s": round(fast_p50, 3),
                "p50_reduction": round(base_p50 / max(fast_p50, 1e-9), 2),
                "baseline_high_mean_s": round(
                    statistics.mean(base_high), 3
                ),
                "preempt_high_mean_s": round(
                    statistics.mean(fast_high), 3
                ),
                "low_p50_s": round(
                    statistics.median(_tier_waits(preempting, "low")), 3
                ),
                "preemptions": preempting.preemption_count,
                "evictions": preempting.eviction_count,
                "completed": len(preempting.metrics.succeeded),
                "disabled_identical": disabled_identical,
            }
        )
    return {
        "benchmark": "preemption",
        "policy": "cheapest-victims",
        "high_fraction": PREEMPTION_HIGH_FRACTION,
        "epc_mib": PREEMPTION_EPC_MIB,
        "window_seconds": PREEMPTION_WINDOW_SECONDS,
        "results": results,
    }


#: The traces sweep: ingestion throughput and peak memory of the
#: streaming CSV adapter on a synthetic 100k-row file, and an
#: EPC-strategy comparison replayed from two registered synthetic
#: shapes.  The windowed load keeps ``TRACES_WINDOW_SECONDS`` rows
#: (one submit per second), so its kept count — the gated
#: ``completed`` metric — is machine-independent even when ``--quick``
#: shrinks the file.
TRACES_CSV_ROWS = 100_000
TRACES_WINDOW_SECONDS = 500
TRACES_SYNTH_SPECS = (
    "synth-bursty:seed=3,jobs=800,window=900",
    "synth-heavytail:seed=3,jobs=800,window=900,max_duration=30m",
)


def _write_traces_csv(path: Path, rows: int) -> None:
    """A Borg-format CSV with one submission per second."""
    with path.open("w") as handle:
        handle.write(
            "job_id,submit_time_seconds,duration_seconds,"
            "assigned_memory_fraction,max_memory_fraction\n"
        )
        for i in range(rows):
            handle.write(f"{i},{i}.0,60.0,0.01,0.02\n")


def _traced_load(spec: str):
    """(trace, wall seconds, tracemalloc peak bytes) of one resolve."""
    tracemalloc.start()
    start = time.perf_counter()
    trace = resolve_trace(spec)
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return trace, elapsed, peak


def traces_scenario(spec: str) -> Scenario:
    """One EPC-contended replay of a registered synthetic shape."""
    return Scenario(
        trace=spec,
        scheduler="binpack",
        sgx_fraction=SGX_FRACTION,
        seed=1,
        indexed_scheduling=True,
        standard_workers=4,
        sgx_workers=4,
    )


def run_traces(csv_rows=TRACES_CSV_ROWS) -> dict:
    """Trace-ecosystem sweep: streaming ingestion + synthetic replays.

    The CSV rows measure that ``borg-csv`` windowing stays O(kept
    window) in memory (``mem_ratio`` is full-load peak over windowed
    peak); the synthetic rows replay two registered generator shapes
    under EPC pressure with binpack and spread, re-running binpack to
    assert spec-level determinism.
    """
    results = []
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "borg_stream.csv"
        _write_traces_csv(path, csv_rows)
        full, full_s, full_peak = _traced_load(
            f"borg-csv:path={path},renumber=false"
        )
        window_spec = (
            f"borg-csv:path={path},window={TRACES_WINDOW_SECONDS}"
        )
        windowed, _, windowed_peak = _traced_load(window_spec)
        rerun, _, _ = _traced_load(window_spec)
        results.append(
            {
                "case": "borg-csv-stream",
                "rows": len(full),
                "completed": len(windowed),
                "ingest_rows_per_s": round(len(full) / full_s),
                "full_peak_mib": round(full_peak / 2**20, 2),
                "windowed_peak_mib": round(windowed_peak / 2**20, 2),
                "mem_ratio": round(full_peak / windowed_peak, 1),
                "deterministic": (
                    list(windowed) == list(rerun)
                    and len(windowed) == TRACES_WINDOW_SECONDS
                ),
            }
        )
    for spec in TRACES_SYNTH_SPECS:
        scenario = traces_scenario(spec)
        start = time.perf_counter()
        binpack = scenario.run()
        wall_s = time.perf_counter() - start
        repeat = scenario.run()
        spread = scenario.with_(scheduler="spread").run()
        results.append(
            {
                "case": spec.split(":")[0],
                "spec": spec,
                "completed": len(binpack.metrics.succeeded),
                "binpack_makespan_s": round(
                    binpack.metrics.makespan_seconds, 3
                ),
                "spread_makespan_s": round(
                    spread.metrics.makespan_seconds, 3
                ),
                "wall_s": round(wall_s, 3),
                "deterministic": (
                    binpack.signature() == repeat.signature()
                ),
            }
        )
    return {
        "benchmark": "traces",
        "csv_rows": csv_rows,
        "window_seconds": TRACES_WINDOW_SECONDS,
        "sgx_fraction": SGX_FRACTION,
        "results": results,
    }


#: Pre-refactor whole-replay wall clock in seconds, measured on the
#: reference machine immediately before the hot-path rebuild (tuple
#: heap, slotted layouts, lean scheduler loops, TSDB write diet).  The
#: keys are trace sizes of :func:`wall_config`; the values are
#: per-engine timings of the identical scenarios.  ``speedup`` in the
#: wall report is the periodic baseline over the fresh periodic wall:
#: machine-dependent in absolute terms, which is why the regression
#: gate compares it against the *committed* BENCH_wall.json row with a
#: generous tolerance rather than against these constants directly.
WALL_BASELINES = {
    250: {"periodic": 0.304, "event": 0.281, "indexed": 0.307},
    1000: {"periodic": 1.497, "event": 1.545, "indexed": 1.526},
    2000: {"periodic": 3.966, "event": 3.914, "indexed": 4.045},
}


def wall_config(
    n_pods: int, event_driven: bool = False, indexed: bool = False
) -> Scenario:
    """One engine variant of the wall sweep (sans trace).

    Identical shape to :func:`event_sched_config` — the wall sweep
    times the same scenarios the equivalence sweep verifies — plus the
    indexed-batch engine as a third variant.
    """
    workers = max(2, n_pods // 125)
    return Scenario(
        scheduler="binpack",
        sgx_fraction=SGX_FRACTION,
        seed=1,
        event_driven=event_driven,
        indexed_scheduling=indexed,
        scheduler_period=EVENT_SCHED_PERIOD_SECONDS,
        standard_workers=workers,
        sgx_workers=workers,
    )


def run_wall(sizes=(250, 1000, 2000), repeats=1) -> dict:
    """Whole-replay wall clock per engine vs pre-refactor baselines."""
    results = []
    for n_pods in sizes:
        trace = synthetic_scaled_trace(
            seed=7, n_jobs=n_pods, overallocators=n_pods // 10
        )
        walls = {}
        runs = {}
        for engine, kwargs in (
            ("periodic", {}),
            ("event", {"event_driven": True}),
            ("indexed", {"indexed": True}),
        ):
            scenario = wall_config(n_pods, **kwargs).with_(trace=trace)
            best = None
            for _ in range(repeats):
                start = time.perf_counter()
                result = scenario.run()
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
                runs[engine] = result
            walls[engine] = best
        periodic, event, indexed = (
            runs["periodic"], runs["event"], runs["indexed"]
        )
        # The cross-engine identity the replay layers must preserve:
        # pod lifecycles, makespan and the queue series.  Pass/skip
        # counters legitimately differ between periodic and
        # event-driven engines, but the indexed engine must match the
        # periodic oracle on the *full* signature.
        engines_identical = (
            event.pod_signature() == periodic.pod_signature()
            and event.metrics.makespan_seconds
            == periodic.metrics.makespan_seconds
            and tuple(event.metrics.queue_series)
            == tuple(periodic.metrics.queue_series)
            and indexed.signature() == periodic.signature()
        )
        baseline = WALL_BASELINES.get(n_pods)
        row = {
            "pods": n_pods,
            "periodic_wall_s": round(walls["periodic"], 3),
            "event_wall_s": round(walls["event"], 3),
            "indexed_wall_s": round(walls["indexed"], 3),
            "engines_identical": engines_identical,
        }
        if baseline is not None:
            row["baseline_periodic_s"] = baseline["periodic"]
            row["baseline_event_s"] = baseline["event"]
            row["baseline_indexed_s"] = baseline["indexed"]
            row["speedup"] = round(
                baseline["periodic"] / walls["periodic"], 2
            )
        results.append(row)
    return {
        "benchmark": "wall",
        "sgx_fraction": SGX_FRACTION,
        "scheduler_period_seconds": EVENT_SCHED_PERIOD_SECONDS,
        "baseline": "pre-refactor seed (see WALL_BASELINES)",
        "results": results,
    }


def run_obs(sizes=(1000, 2000), repeats=9) -> dict:
    """Ledger-on vs ledger-off wall overhead of the periodic engine.

    The observability contract has two halves: turning the decision
    ledger on must not change the run (``identical`` — whole-replay
    signatures agree bit for bit) and must not slow it down
    meaningfully.  ``overhead_pct`` compares the best observed wall
    against the best unobserved wall over ``repeats`` interleaved
    pairs (alternating order within each pair): ambient machine noise
    — CPU frequency states, noisy CI neighbours — only ever slows a
    run down, so each arm's minimum converges to its uncontended
    floor, and the floor ratio is the real cost of recording.  Means
    or medians of so few seconds of wall time are dominated by which
    samples a load spike happened to hit.  ``events`` is the ledger's
    record count, which is deterministic per trace size and therefore
    the gateable metric.
    """
    from repro.api import ObserveConfig

    results = []
    for n_pods in sizes:
        trace = synthetic_scaled_trace(
            seed=7, n_jobs=n_pods, overallocators=n_pods // 10
        )
        plain = wall_config(n_pods).with_(trace=trace)
        off_best = on_best = None
        with tempfile.TemporaryDirectory() as tmp:
            for repeat in range(repeats):
                ledger_path = os.path.join(tmp, f"r{repeat}.jsonl")
                observed = plain.with_(
                    observe=ObserveConfig(ledger_path=ledger_path)
                )
                arms = [("off", plain), ("on", observed)]
                if repeat % 2:
                    arms.reverse()
                timings = {}
                for arm, scenario in arms:
                    start = time.perf_counter()
                    result = scenario.run()
                    timings[arm] = time.perf_counter() - start
                    if arm == "off":
                        off = result
                    else:
                        on = result
                if off_best is None or timings["off"] < off_best:
                    off_best = timings["off"]
                if on_best is None or timings["on"] < on_best:
                    on_best = timings["on"]
            with open(on.ledger_path, encoding="utf-8") as handle:
                events = sum(1 for _ in handle) - 1  # header line
        results.append(
            {
                "pods": n_pods,
                "off_wall_s": round(off_best, 3),
                "on_wall_s": round(on_best, 3),
                "overhead_pct": round(
                    100.0 * (on_best - off_best) / off_best, 1
                ),
                "identical": on.signature() == off.signature(),
                "events": events,
            }
        )
    return {
        "benchmark": "obs",
        "sgx_fraction": SGX_FRACTION,
        "scheduler_period_seconds": EVENT_SCHED_PERIOD_SECONDS,
        "results": results,
    }


#: The cells sweep: whole-replay wall clock of the two-level sharded
#: scheduler (``Scenario(cells=...)``) versus the flat single-scheduler
#: path, on clusters that grow with the workload (one worker pair per
#: 125 pods; 100k pods is a 1600-node cluster).  Submissions arrive at
#: a constant rate, so each periodic pass handles a bounded batch —
#: the regime where the flat binpack scan still walks *every* node per
#: pod while a cell's scheduler walks only its shard.  The speedup
#: column (flat wall over sharded wall) therefore *grows* with cluster
#: size: the top of the curve is where two-level scheduling pays.
CELLS_SIZES = (2_000, 10_000, 30_000, 100_000)
CELLS_COUNTS = (4, 16)
CELLS_ARRIVAL_PER_SECOND = 16.0


def cells_scenario(n_pods: int, cells=None) -> Scenario:
    """One configuration of the cells sweep (sans trace).

    Identical cluster scaling and knobs to :func:`wall_config`'s
    periodic engine — the only axis is ``cells``; ``None`` is the flat
    single-scheduler oracle the sharded rows are measured against.
    """
    workers = max(2, n_pods // 125)
    kwargs = {} if cells is None else {"cells": cells}
    return Scenario(
        scheduler="binpack",
        sgx_fraction=SGX_FRACTION,
        seed=1,
        scheduler_period=EVENT_SCHED_PERIOD_SECONDS,
        standard_workers=workers,
        sgx_workers=workers,
        **kwargs,
    )


def run_cells(sizes=CELLS_SIZES, counts=CELLS_COUNTS) -> dict:
    """Sharded vs flat wall clock at 2k-100k pods.

    Every configuration runs twice: the wall is the best of the two
    (same convention as :func:`run_wall`) and ``deterministic`` is the
    bit-for-bit identity of the repeat — the sharded machinery must
    stay exactly reproducible at every scale, spillovers included.
    """
    results = []
    for n_pods in sizes:
        trace = synthetic_scaled_trace(
            seed=7,
            n_jobs=n_pods,
            overallocators=n_pods // 10,
            window_seconds=n_pods / CELLS_ARRIVAL_PER_SECOND,
        )

        def timed(cells):
            scenario = cells_scenario(n_pods, cells).with_(trace=trace)
            start = time.perf_counter()
            first = scenario.run()
            first_s = time.perf_counter() - start
            start = time.perf_counter()
            repeat = scenario.run()
            repeat_s = time.perf_counter() - start
            return (
                first,
                min(first_s, repeat_s),
                first.signature() == repeat.signature(),
            )

        flat, flat_s, flat_deterministic = timed(None)
        results.append(
            {
                "pods": n_pods,
                "cells": 1,
                "nodes": 2 * max(2, n_pods // 125),
                "wall_s": round(flat_s, 3),
                "speedup": 1.0,
                "spillovers": 0,
                "completed": len(flat.metrics.succeeded),
                "makespan_s": round(flat.metrics.makespan_seconds, 3),
                "deterministic": flat_deterministic,
            }
        )
        for cells in counts:
            sharded, sharded_s, deterministic = timed(cells)
            results.append(
                {
                    "pods": n_pods,
                    "cells": cells,
                    "nodes": 2 * max(2, n_pods // 125),
                    "wall_s": round(sharded_s, 3),
                    "speedup": round(flat_s / sharded_s, 2),
                    "spillovers": sharded.cell_spillovers,
                    "completed": len(sharded.metrics.succeeded),
                    "makespan_s": round(
                        sharded.metrics.makespan_seconds, 3
                    ),
                    "deterministic": deterministic,
                }
            )
    return {
        "benchmark": "cells",
        "cell_policy": "balanced",
        "sgx_fraction": SGX_FRACTION,
        "scheduler_period_seconds": EVENT_SCHED_PERIOD_SECONDS,
        "arrival_per_second": CELLS_ARRIVAL_PER_SECOND,
        "results": results,
    }


def main() -> None:
    report = run()
    out_path = Path(__file__).resolve().parent.parent / (
        "BENCH_state_cache.json"
    )
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    for row in report["results"]:
        print(
            f"{row['pods']:>6} pods: full {row['full_scan_ms']:.3f} ms  "
            f"cached {row['cached_ms']:.3f} ms  "
            f"speedup {row['speedup']:.1f}x"
        )
    print(f"wrote {out_path}")

    event_report = run_event_sched()
    event_path = Path(__file__).resolve().parent.parent / (
        "BENCH_event_sched.json"
    )
    event_path.write_text(json.dumps(event_report, indent=2) + "\n")
    for row in event_report["results"]:
        print(
            f"{row['pods']:>6} pods: periodic {row['periodic_passes']} "
            f"passes / {row['periodic_wall_s']:.2f} s  "
            f"event {row['event_passes']} passes / "
            f"{row['event_wall_s']:.2f} s  "
            f"({row['pass_reduction']:.1f}x fewer passes, "
            f"identical={row['bit_for_bit_identical']})"
        )
    print(f"wrote {event_path}")

    scale_report = run_sched_scale()
    scale_path = Path(__file__).resolve().parent.parent / (
        "BENCH_sched_scale.json"
    )
    scale_path.write_text(json.dumps(scale_report, indent=2) + "\n")
    for row in scale_report["results"]:
        print(
            f"{row['scheduler']:>12} {row['pods']:>5} pods / "
            f"{row['nodes']:>3} nodes: full {row['full_scan_ms']:.1f} ms  "
            f"indexed {row['indexed_ms']:.1f} ms  "
            f"speedup {row['speedup']:.1f}x  "
            f"identical={row['identical']}"
        )
    print(f"wrote {scale_path}")

    api_report = run_api_sweep()
    api_path = Path(__file__).resolve().parent.parent / (
        "BENCH_api_sweep.json"
    )
    api_path.write_text(json.dumps(api_report, indent=2) + "\n")
    identical = all(
        row["parallel_identical"] for row in api_report["results"]
    )
    print(
        f"api_sweep: {api_report['count']} scenarios  "
        f"serial {api_report['serial_wall_s']:.2f} s  "
        f"parallel({api_report['workers']}) "
        f"{api_report['parallel_wall_s']:.2f} s  "
        f"speedup {api_report['parallel_speedup']:.2f}x  "
        f"identical={identical}"
    )
    print(f"wrote {api_path}")

    preemption_report = run_preemption()
    preemption_path = Path(__file__).resolve().parent.parent / (
        "BENCH_preemption.json"
    )
    preemption_path.write_text(
        json.dumps(preemption_report, indent=2) + "\n"
    )
    for row in preemption_report["results"]:
        print(
            f"{row['pods']:>6} pods: high-tier p50 "
            f"{row['baseline_high_p50_s']:.1f} s -> "
            f"{row['preempt_high_p50_s']:.1f} s "
            f"({row['p50_reduction']:.1f}x), "
            f"{row['preemptions']} preemptions / "
            f"{row['evictions']} evictions, "
            f"disabled_identical={row['disabled_identical']}"
        )
    print(f"wrote {preemption_path}")

    traces_report = run_traces()
    traces_path = Path(__file__).resolve().parent.parent / (
        "BENCH_traces.json"
    )
    traces_path.write_text(json.dumps(traces_report, indent=2) + "\n")
    for row in traces_report["results"]:
        if row["case"] == "borg-csv-stream":
            print(
                f"borg-csv: {row['rows']} rows at "
                f"{row['ingest_rows_per_s']} rows/s, peak "
                f"{row['full_peak_mib']:.1f} MiB full vs "
                f"{row['windowed_peak_mib']:.1f} MiB windowed "
                f"({row['mem_ratio']:.0f}x), "
                f"deterministic={row['deterministic']}"
            )
        else:
            print(
                f"{row['case']}: {row['completed']} completed, "
                f"binpack {row['binpack_makespan_s']:.0f} s vs "
                f"spread {row['spread_makespan_s']:.0f} s makespan, "
                f"deterministic={row['deterministic']}"
            )
    print(f"wrote {traces_path}")

    cells_report = run_cells()
    cells_path = Path(__file__).resolve().parent.parent / (
        "BENCH_cells.json"
    )
    cells_path.write_text(json.dumps(cells_report, indent=2) + "\n")
    for row in cells_report["results"]:
        print(
            f"{row['pods']:>7} pods / {row['cells']:>2} cells: "
            f"{row['wall_s']:.2f} s  speedup {row['speedup']:.2f}x  "
            f"{row['spillovers']} spillovers  "
            f"deterministic={row['deterministic']}"
        )
    print(f"wrote {cells_path}")

    wall_report = run_wall()
    wall_path = Path(__file__).resolve().parent.parent / (
        "BENCH_wall.json"
    )
    wall_path.write_text(json.dumps(wall_report, indent=2) + "\n")
    for row in wall_report["results"]:
        print(
            f"{row['pods']:>6} pods: periodic {row['periodic_wall_s']:.2f} s  "
            f"event {row['event_wall_s']:.2f} s  "
            f"indexed {row['indexed_wall_s']:.2f} s  "
            f"(baseline {row.get('baseline_periodic_s', '-')} s, "
            f"speedup {row.get('speedup', '-')}x, "
            f"identical={row['engines_identical']})"
        )
    print(f"wrote {wall_path}")

    obs_report = run_obs()
    obs_path = Path(__file__).resolve().parent.parent / (
        "BENCH_obs.json"
    )
    obs_path.write_text(json.dumps(obs_report, indent=2) + "\n")
    for row in obs_report["results"]:
        print(
            f"{row['pods']:>6} pods: ledger off {row['off_wall_s']:.2f} s  "
            f"on {row['on_wall_s']:.2f} s  "
            f"(overhead {row['overhead_pct']:+.1f}%, "
            f"{row['events']} events, identical={row['identical']})"
        )
    print(f"wrote {obs_path}")


if __name__ == "__main__":
    main()
