"""Extension bench: the trace ecosystem's ingestion and replay sweep.

Reuses the ``run_traces`` builders from ``run_bench.py`` on a small
configuration: the streaming ``borg-csv`` adapter must keep a windowed
load's peak memory well under the full load's, and every registered
synthetic shape must replay deterministically.  ``run_bench.py`` is the
standalone runner that records the full-size comparison to
``BENCH_traces.json``.
"""

from __future__ import annotations

from run_bench import (
    TRACES_SYNTH_SPECS,
    TRACES_WINDOW_SECONDS,
    run_traces,
    traces_scenario,
)


def test_traces_sweep_small():
    report = run_traces(csv_rows=5_000)
    rows = {row["case"]: row for row in report["results"]}
    assert set(rows) == {
        "borg-csv-stream",
        "synth-bursty",
        "synth-heavytail",
    }
    for row in rows.values():
        assert row["deterministic"] is True
    csv_row = rows["borg-csv-stream"]
    assert csv_row["rows"] == 5_000
    assert csv_row["completed"] == TRACES_WINDOW_SECONDS
    # The windowed load must not buffer the whole file.
    assert csv_row["mem_ratio"] > 2.0
    for spec in TRACES_SYNTH_SPECS:
        name = spec.split(":")[0]
        assert rows[name]["completed"] > 0


def test_synth_replays_differ_between_shapes():
    """The shapes are real workload variety, not renamed copies."""
    bursty = traces_scenario(TRACES_SYNTH_SPECS[0]).run()
    heavytail = traces_scenario(TRACES_SYNTH_SPECS[1]).run()
    assert bursty.pod_signature() != heavytail.pod_signature()
