"""Fig. 11 bench: malicious containers with and without limit enforcement.

Paper targets: waits grow with the squatters' allocation size when
limits are disabled; enforcing limits annihilates the squatters and even
beats the trace-only reference, because the trace's own 44
over-allocators are killed at launch.
"""

from conftest import run_once
from repro.experiments.fig11_limits import format_fig11, run_fig11


def test_fig11_limits(benchmark, trace):
    result = run_once(benchmark, run_fig11, trace=trace)
    print("\n[Fig. 11] Honest-job waiting times under malicious pods")
    print(format_fig11(result))
    for label, run in result.runs.items():
        benchmark.extra_info[f"mean_wait[{label}]"] = run.mean_wait

    reference = result.get("limits-disabled/trace-only")
    squat25 = result.get("limits-disabled/25%-epc")
    squat50 = result.get("limits-disabled/50%-epc")
    enforced = result.get("limits-enabled/50%-epc")

    # Bigger squatters hurt honest jobs more.
    assert reference.mean_wait < squat25.mean_wait < squat50.mean_wait
    # Enforcement annihilates the squatters...
    assert enforced.mean_wait < 0.25 * squat50.mean_wait
    # ...and kills the malicious pods plus the trace's over-allocators,
    # beating even the trace-only reference.
    assert enforced.killed_pods >= 20
    assert enforced.mean_wait <= reference.mean_wait
