"""Extension bench: SGX 2 dynamic EPC memory (Section VI-G).

Not a paper figure — the paper only *predicts* that SGX 2's dynamic
allocation "can really improve resource utilization" and that the
measured-usage scheduler exploits it unchanged.  This bench tests the
prediction on a bursty enclave workload over the paper's cluster.
"""

from conftest import run_once
from repro.experiments.ext_sgx2 import format_ext_sgx2, run_ext_sgx2


def test_ext_sgx2_dynamic_memory(benchmark):
    result = run_once(benchmark, run_ext_sgx2)
    print("\n[Extension] SGX 1 vs SGX 2 on a bursty enclave workload")
    print(format_ext_sgx2(result))
    print(f"  makespan speedup with SGX 2: {result.makespan_speedup:.2f}x")
    benchmark.extra_info["makespan_speedup"] = result.makespan_speedup
    benchmark.extra_info["sgx1_mean_wait_s"] = result.sgx1.mean_wait_seconds
    benchmark.extra_info["sgx2_mean_wait_s"] = result.sgx2.mean_wait_seconds

    # The paper's prediction, quantified: the same scheduler turns
    # dynamic EPC into a strictly earlier batch completion and shorter
    # queues, with every job still completing.
    assert result.makespan_speedup > 1.2
    assert result.sgx2.mean_wait_seconds < result.sgx1.mean_wait_seconds
    assert result.sgx1.completed == result.sgx2.completed
