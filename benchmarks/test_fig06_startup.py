"""Fig. 6 bench: SGX process startup versus requested EPC size."""

import pytest

from conftest import run_once
from repro.experiments.fig6_startup import format_fig6, run_fig6


def test_fig06_startup(benchmark):
    result = run_once(benchmark, run_fig6)
    print("\n[Fig. 6] Startup time of SGX processes (60 runs/size)")
    print(format_fig6(result))
    benchmark.extra_info["slope_below_ms_per_mib"] = (
        result.alloc_slope_below_knee() * 1000.0
    )
    benchmark.extra_info["slope_above_ms_per_mib"] = (
        result.alloc_slope_above_knee() * 1000.0
    )
    # Shape targets, straight from the paper's text:
    # PSW ~100 ms flat; 1.6 ms/MiB below the usable EPC; a ~200 ms jump
    # at the knee; 4.5 ms/MiB beyond it.
    for row in result.rows:
        assert row.psw_mean_s == pytest.approx(0.100, rel=0.05)
    assert result.alloc_slope_below_knee() == pytest.approx(
        0.0016, rel=0.10
    )
    assert result.alloc_slope_above_knee() == pytest.approx(
        0.0045, rel=0.10
    )
    knee_jump = (
        result.row_at(112.0).alloc_mean_s - result.row_at(93.5).alloc_mean_s
    )
    assert knee_jump > 0.200
