"""Extension bench: incremental cluster-state cache vs full window scan.

Times the per-pass snapshot (the two Listing-1 queries behind
``ClusterStateService.build_views``) at growing cluster sizes, cached
and uncached, and asserts the cache actually removes the O(window
points) rescans.  ``run_bench.py`` is the standalone runner that records
the same comparison to ``BENCH_state_cache.json``.
"""

from __future__ import annotations

import pytest

from run_bench import NOW, build_state, time_snapshot


@pytest.mark.parametrize("n_pods", [250, 1000])
@pytest.mark.parametrize("mode", ["full-scan", "cached"])
def test_snapshot_latency(benchmark, n_pods, mode):
    db, service = build_state(n_pods, use_cache=(mode == "cached"))
    result = benchmark(service._measured_usage, NOW)
    benchmark.extra_info["pods"] = n_pods
    benchmark.extra_info["mode"] = mode
    series = sum(len(pods) for pods in result.values())
    benchmark.extra_info["series"] = series
    assert series == n_pods  # every pod has in-window samples
    if mode == "cached":
        assert db.scan_count == 0  # zero stored-point reads per pass


def test_cached_pass_is_materially_faster():
    """The acceptance floor, with margin kept conservative for CI noise
    (run_bench.py records the real speedup, typically well above 5x)."""
    _, full_service = build_state(1000, use_cache=False)
    _, cached_service = build_state(1000, use_cache=True)
    full_s = time_snapshot(full_service, repeats=5)
    cached_s = time_snapshot(cached_service, repeats=5)
    assert full_s / cached_s > 2.0


def test_cached_and_full_snapshots_agree_at_scale():
    _, full_service = build_state(500, use_cache=False)
    _, cached_service = build_state(500, use_cache=True)
    assert cached_service._measured_usage(NOW) == full_service._measured_usage(
        NOW
    )
