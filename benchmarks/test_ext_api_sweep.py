"""Smoke test: the scenario-sweep bench harness imports and runs.

The full 4-scenario / 4-worker comparison is ``run_bench.py``'s job;
tier-1 only proves the harness works end-to-end on a tiny grid and
that its headline invariant — pool workers bit-for-bit identical to
serial execution — holds there too.
"""

from run_bench import run_api_sweep


class TestApiSweepBench:
    def test_tiny_sweep_runs(self):
        report = run_api_sweep(
            workers=2,
            trace_jobs=40,
            grid={
                "scheduler": ("binpack",),
                "sgx_fraction": (0.0, 0.5),
            },
        )
        assert report["schema"] == "repro.sweep/1"
        assert report["benchmark"] == "api_sweep"
        assert report["count"] == 2
        assert len(report["results"]) == 2
        for row in report["results"]:
            assert row["parallel_identical"] is True
            assert row["completed"] == row["submitted"] == 40
        assert report["serial_wall_s"] > 0
        assert report["parallel_wall_s"] > 0
