#!/usr/bin/env python3
"""Low-level tour of the SGX substrate: driver, enclaves, attestation.

Everything the orchestrator builds on, exercised directly: the patched
driver's module parameters and ioctls (Section V-E), the per-container
PSW/AESM, the ECREATE -> EINIT -> ecall flow with launch tokens
(Section II / Fig. 1), per-pod limit enforcement at EINIT, and a quote
for remote attestation.

Run:  python examples/enclave_lifecycle.py
"""

from repro.errors import EnclaveLimitExceededError
from repro.sgx.aesm import PlatformSoftware
from repro.sgx.driver import (
    IOCTL_GET_EPC_USAGE,
    IOCTL_SET_POD_LIMIT,
    PARAM_FREE_PAGES,
    PARAM_TOTAL_PAGES,
    SgxDriver,
)
from repro.sgx.epc import EnclavePageCache
from repro.sgx.perf import SgxPerfModel
from repro.units import mib, pages


def main() -> None:
    epc = EnclavePageCache()  # 128 MiB PRM, 93.5 MiB usable
    driver = SgxDriver(epc, enforce_limits=True)
    perf = SgxPerfModel()

    print("Driver module parameters (as under /sys/module/isgx/parameters):")
    total = driver.read_parameter(PARAM_TOTAL_PAGES)
    free = driver.read_parameter(PARAM_FREE_PAGES)
    print(f"  sgx_nr_total_epc_pages = {total}")
    print(f"  sgx_nr_free_pages      = {free}")

    # Kubelet relays the pod's EPC limit before containers start.
    pod_cgroup = "/kubepods/burstable/pod-demo"
    driver.ioctl(
        IOCTL_SET_POD_LIMIT, cgroup_path=pod_cgroup,
        limit_pages=pages(mib(32)),
    )
    print(f"\nPod limit set: {pod_cgroup} -> {pages(mib(32))} pages")

    # The container boots its own PSW (Section VI-D: one per container).
    psw = PlatformSoftware(container_id="demo")
    boot_seconds = psw.boot()
    print(f"PSW/AESM boot: {boot_seconds * 1000:.0f} ms")

    # ECREATE + EADD: all enclave memory committed up front.
    driver.register_process(pid=4242, cgroup_path=pod_cgroup)
    enclave = driver.create_enclave(pid=4242, size_bytes=mib(24))
    alloc_seconds = perf.allocation_seconds(mib(24))
    print(
        f"Enclave created: {enclave.pages} pages committed "
        f"({alloc_seconds * 1000:.1f} ms to allocate, cf. Fig. 6)"
    )
    print(f"  free pages now: {driver.read_parameter(PARAM_FREE_PAGES)}")

    # EINIT with a launch token from the LE, then trusted calls.
    driver.initialize_enclave(4242, enclave, psw.aesm)
    print(f"EINIT ok (measurement {enclave.measurement[:16]}...)")
    print(f"  ecall -> {enclave.ecall('process_secret')}")

    # Remote attestation: a quote binding the measurement to the platform.
    quote = psw.aesm.get_quote(enclave.measurement, report_data="nonce42")
    print(f"  quote digest: {quote.digest[:32]}...")

    # Per-process occupancy, as the metrics probe reads it.
    used = driver.ioctl(IOCTL_GET_EPC_USAGE, pid=4242)
    print(f"  ioctl(GET_EPC_USAGE, pid=4242) = {used} pages")

    # A second enclave that would push the pod past its 32 MiB limit is
    # denied at EINIT — the paper's 115-line driver patch in action.
    liar = driver.create_enclave(pid=4242, size_bytes=mib(16))
    try:
        driver.initialize_enclave(4242, liar, psw.aesm)
    except EnclaveLimitExceededError as exc:
        print(f"\nLimit enforcement: {exc}")
    print(
        f"  free pages after denial: "
        f"{driver.read_parameter(PARAM_FREE_PAGES)} "
        "(the denied enclave's pages were reclaimed)"
    )

    driver.unregister_process(4242)
    psw.shutdown()
    print(
        f"\nTeardown complete; free pages = "
        f"{driver.read_parameter(PARAM_FREE_PAGES)}"
    )


if __name__ == "__main__":
    main()
