#!/usr/bin/env python3
"""Secure enclave migration between nodes (the paper's future work).

The paper's conclusion plans "support for enclave migration" following
Gu et al. (DSN'17).  This walks the protocol end to end between two
SGX machines of the paper's cluster — checkpoint at a quiescent point,
migration key over attested channels, self-destroying source, one-time
restore — and then demonstrates that the fork and rollback attacks the
protocol exists to prevent are, in fact, prevented.

Run:  python examples/enclave_migration.py
"""

from repro.sgx.aesm import AesmService
from repro.sgx.driver import SgxDriver
from repro.sgx.epc import EnclavePageCache
from repro.sgx.migration import MigrationError, MigrationManager
from repro.units import mib


def make_node(platform_id):
    driver = SgxDriver(EnclavePageCache())
    driver.register_process(1, "/kubepods/burstable/podmig")
    aesm = AesmService(platform_id=platform_id)
    aesm.start()
    return driver, aesm


def main() -> None:
    source_driver, source_aesm = make_node("sgx-worker-0")
    target_driver, target_aesm = make_node("sgx-worker-1")
    manager = MigrationManager()

    # A running enclave with some accumulated state.
    enclave = source_driver.create_enclave(1, size_bytes=mib(24))
    source_driver.initialize_enclave(1, enclave, source_aesm)
    for step in range(4):
        enclave.ecall(f"step-{step}")
    print(
        f"source enclave: {enclave.pages} pages, "
        f"{enclave.ecall_count} ecalls, "
        f"measurement {enclave.measurement[:12]}..."
    )
    print(
        f"source EPC before migration: "
        f"{source_driver.epc.allocated_pages} pages allocated"
    )

    # Checkpoint: quiesce, attest both ends, cut, self-destroy.
    checkpoint, key = manager.checkpoint(
        source_driver, 1, enclave, source_aesm, target_aesm
    )
    print(
        f"\ncheckpoint gen={checkpoint.generation} "
        f"digest={checkpoint.state_digest[:16]}... "
        f"key bound to target {key.target_platform!r}"
    )
    print(
        f"source EPC after self-destroy: "
        f"{source_driver.epc.allocated_pages} pages (fork-safe)"
    )

    # Restore on the attested target.
    restored = manager.restore(
        target_driver, 1, checkpoint, key, target_aesm
    )
    print(
        f"restored on target: {restored.pages} pages, "
        f"{restored.ecall_count} ecalls replayed, "
        f"measurement matches: "
        f"{restored.measurement == checkpoint.measurement}"
    )

    # Fork attack: restoring the same checkpoint twice.
    try:
        manager.restore(target_driver, 1, checkpoint, key, target_aesm)
    except MigrationError as exc:
        print(f"\nfork attack blocked: {exc}")

    # Rollback attack: replay stale state after newer state exists.
    # Both defences apply to the stale checkpoint — it was consumed
    # (fork check) *and* its generation is now behind the lineage's
    # newest (freshness check); either alone blocks the replay.
    restored.ecall("new-work")
    newer_checkpoint, newer_key = manager.checkpoint(
        target_driver, 1, restored, target_aesm, source_aesm
    )
    assert newer_checkpoint.generation > checkpoint.generation
    try:
        manager.restore(
            target_driver, 1, checkpoint, key, target_aesm
        )
    except MigrationError as exc:
        print(
            f"rollback attack blocked (gen {checkpoint.generation} < "
            f"{newer_checkpoint.generation}): {exc}"
        )

    # The lineage continues normally on the original node.
    back = manager.restore(
        source_driver, 1, newer_checkpoint, newer_key, source_aesm
    )
    print(
        f"\nmigrated back to source: gen={newer_checkpoint.generation}, "
        f"{back.ecall_count} ecalls carried over"
    )


if __name__ == "__main__":
    main()
