#!/usr/bin/env python3
"""Quickstart: schedule SGX and standard pods on the paper's cluster.

Builds the heterogeneous 4-worker testbed of Section VI-A (two 64 GiB
standard machines, two SGX machines with 128 MiB PRM each), submits a
mix of enclave and standard pods, runs one binpack scheduling pass and
walks each pod through its lifecycle — printing where everything landed
and what the paper's metrics (waiting time, turnaround) come out to.

Run:  python examples/quickstart.py
"""

from repro import (
    BinpackScheduler,
    Orchestrator,
    make_pod_spec,
    paper_cluster,
)
from repro.units import fmt_bytes, gib, mib


def main() -> None:
    cluster = paper_cluster()
    orchestrator = Orchestrator(cluster)
    scheduler = BinpackScheduler()

    print("Cluster inventory:")
    for node in cluster:
        kind = "SGX   " if node.sgx_capable else "normal"
        epc = (
            f", EPC {node.capacity.epc_pages} pages"
            if node.sgx_capable
            else ""
        )
        print(
            f"  {node.name:14s} [{kind}] "
            f"{fmt_bytes(node.capacity.memory_bytes)} RAM{epc}"
        )

    # Submit three enclave jobs and two standard jobs at t=0.
    specs = [
        make_pod_spec(
            "enclave-small",
            duration_seconds=30.0,
            declared_epc_bytes=mib(10),
        ),
        make_pod_spec(
            "enclave-medium",
            duration_seconds=45.0,
            declared_epc_bytes=mib(40),
        ),
        make_pod_spec(
            "enclave-large",
            duration_seconds=60.0,
            declared_epc_bytes=mib(80),
        ),
        make_pod_spec(
            "web-server",
            duration_seconds=30.0,
            declared_memory_bytes=gib(4),
        ),
        make_pod_spec(
            "database",
            duration_seconds=60.0,
            declared_memory_bytes=gib(16),
        ),
    ]
    pods = [orchestrator.submit(spec, now=0.0) for spec in specs]

    # One scheduling pass: filter (hardware compatibility, saturation),
    # then binpack placement with SGX nodes reserved for enclave jobs.
    result = orchestrator.scheduling_pass(scheduler, now=1.0)
    print("\nPlacements after one binpack pass:")
    for pod, startup_seconds in result.launched:
        print(
            f"  {pod.name:16s} -> {pod.node_name:14s} "
            f"(startup {startup_seconds * 1000:.1f} ms)"
        )

    # Drive the lifecycle: start after startup latency, then complete.
    for pod, startup_seconds in result.launched:
        orchestrator.start_pod(pod, now=1.0 + startup_seconds)
    for pod in pods:
        duration = pod.spec.workload.duration_seconds
        orchestrator.complete_pod(pod, now=pod.started_at + duration)

    print("\nPer-pod metrics (the paper's two reported quantities):")
    for pod in pods:
        print(
            f"  {pod.name:16s} waiting {pod.waiting_seconds:6.3f}s  "
            f"turnaround {pod.turnaround_seconds:7.3f}s  [{pod.phase}]"
        )

    # SGX startup is visibly costlier than standard startup (Fig. 6):
    # ~100 ms of PSW boot plus 1.6 ms per MiB of enclave memory.
    sgx_waits = [
        p.waiting_seconds for p in pods if p.requires_sgx
    ]
    std_waits = [
        p.waiting_seconds for p in pods if not p.requires_sgx
    ]
    print(
        f"\nMean waiting: SGX {1000 * sum(sgx_waits) / 3:.1f} ms vs "
        f"standard {1000 * sum(std_waits) / 2:.1f} ms "
        "(PSW boot + enclave allocation, cf. Fig. 6)"
    )


if __name__ == "__main__":
    main()
