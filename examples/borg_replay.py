#!/usr/bin/env python3
"""Replay the scaled Google Borg trace, as in Sections VI-B/VI-E.

Generates the 663-job evaluation workload (1-hour slice, every-1200th-
job sampling, 44 over-allocators), replays it through the full control
plane at several SGX job shares and prints the waiting-time picture of
Fig. 8 plus the turnaround totals of Fig. 10.

Run:  python examples/borg_replay.py [--jobs N] [--sgx-share PCT ...]
"""

import argparse

from repro import Scenario, Sweep, synthetic_scaled_trace
from repro.trace.stats import cdf_at, percentile
from repro.units import fmt_duration


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs",
        type=int,
        default=663,
        help="jobs in the scaled trace (paper: 663)",
    )
    parser.add_argument(
        "--sgx-share",
        type=float,
        nargs="*",
        default=[0.0, 50.0, 100.0],
        help="SGX job percentages to replay (paper: 0..100 by 25)",
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    overallocators = round(44 * args.jobs / 663)
    trace = synthetic_scaled_trace(
        seed=args.seed, n_jobs=args.jobs, overallocators=overallocators
    )
    print(
        f"Trace: {len(trace)} jobs over {fmt_duration(trace.span_seconds)}, "
        f"{trace.overallocator_count} over-allocators, "
        f"useful duration {trace.total_duration_seconds / 3600:.1f} h"
    )

    sweep = Sweep(
        Scenario(scheduler="binpack", seed=1, trace=trace),
        grid={"sgx_fraction": [s / 100.0 for s in args.sgx_share]},
        name="borg-replay",
    )
    for share, result in zip(args.sgx_share, sweep.run(), strict=True):
        metrics = result.metrics
        waits = metrics.waiting_times()
        print(f"\n=== {share:.0f}% SGX jobs (binpack) ===")
        print(
            f"  completed {len(metrics.succeeded)}, "
            f"failed {len(metrics.failed)}, "
            f"makespan {fmt_duration(metrics.makespan_seconds)}"
        )
        print(
            f"  waiting: mean {metrics.mean_waiting_seconds():.1f}s, "
            f"median {percentile(waits, 50):.1f}s, "
            f"p95 {percentile(waits, 95):.1f}s, "
            f"max {metrics.max_waiting_seconds():.0f}s"
        )
        print(
            "  waiting CDF: "
            + ", ".join(
                f"<={int(w)}s: {cdf_at(waits, w):.0f}%"
                for w in (5.0, 60.0, 600.0, 2000.0)
            )
        )
        print(
            f"  total turnaround: "
            f"{metrics.total_turnaround_hours():.1f} h "
            f"(trace bar: {trace.total_duration_seconds / 3600:.1f} h)"
        )


if __name__ == "__main__":
    main()
