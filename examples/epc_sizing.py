#!/usr/bin/env python3
"""What-if analysis of EPC sizes, including future SGX 2 hardware.

Reproduces the Fig. 7 experiment: replay the all-SGX workload under PRM
sizes of 32 to 256 MiB and watch the pending-request backlog drain.  On
current 128 MiB hardware the batch needs well over the trace hour; a
hypothetical 256 MiB EPC removes contention entirely — the paper's
argument for why SGX 2's relaxed limits matter to cloud providers.

Run:  python examples/epc_sizing.py
"""

from repro import Scenario, Sweep, synthetic_scaled_trace
from repro.units import fmt_duration, mib


def sparkline(values, width=48) -> str:
    """Tiny text rendition of the pending-queue curve."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    peak = max(values) or 1.0
    step = max(1, len(values) // width)
    sampled = values[::step][:width]
    return "".join(
        blocks[min(int(v / peak * (len(blocks) - 1)), len(blocks) - 1)]
        for v in sampled
    )


def main() -> None:
    trace = synthetic_scaled_trace(seed=42)
    print(
        "All-SGX replay of the scaled Borg trace under various EPC sizes\n"
    )
    print(
        f"{'EPC':>7s} {'makespan':>10s} {'peak queue':>12s} "
        f"{'done':>5s} {'rejected':>8s}  pending-EPC curve"
    )
    sizes_mib = (32, 64, 128, 256)
    sweep = Sweep(
        Scenario(
            scheduler="binpack", sgx_fraction=1.0, seed=1, trace=trace
        ),
        grid={"epc_total_bytes": [mib(s) for s in sizes_mib]},
        name="epc-sizing",
    )
    # The four replays are independent scenarios; fan them out.
    for size_mib, result in zip(sizes_mib, sweep.run(workers=4), strict=True):
        metrics = result.metrics
        curve = [s.pending_epc_mib for s in metrics.queue_series]
        print(
            f"{size_mib:4d}MiB {fmt_duration(metrics.makespan_seconds):>10s} "
            f"{max(curve):9.0f}MiB {len(metrics.succeeded):5d} "
            f"{len(metrics.failed):8d}  |{sparkline(curve)}|"
        )
    print(
        "\nPaper's measured makespans: 32 MiB -> 4h47, 64 MiB -> 2h47, "
        "128 MiB -> 1h22, 256 MiB -> 1h00."
    )
    print(
        "Rejected jobs are enclaves larger than the shrunken usable EPC "
        "(possible at 32/64 MiB); they can never fit and are failed "
        "so the queue drains, as in the figure."
    )


if __name__ == "__main__":
    main()
