#!/usr/bin/env python3
"""Two-tier tenants: priorities and EPC-aware preemption in action.

A latency-critical tenant shares a contended SGX cluster with a bulk
batch tenant (the scaled Borg trace, all-SGX, squeezed through a
64 MiB PRM).  The same workload is replayed twice through the Scenario
API:

* ``preemption_policy="none"`` — the paper's strictly non-preemptive
  FCFS orchestrator: the high tier queues behind whatever the batch
  tier already committed to the nodes;
* ``preemption_policy="cheapest-victims"`` — the EPC-aware planner:
  high-tier pods evict the cheapest burstable victims (priced by
  driver-measured enclave pages plus discarded runtime) and start
  almost immediately; victims are resubmitted with their original
  FCFS position.

Run:  python examples/priority_tenants.py
"""

import statistics

from repro.api import Scenario, rows_to_table
from repro.trace.borg import synthetic_scaled_trace
from repro.units import mib


def tier_waits(result, tier):
    return [
        pod.waiting_seconds
        for pod in result.metrics.succeeded
        if pod.spec.labels.get("tier") == tier
        and pod.waiting_seconds is not None
    ]


def main() -> None:
    # A bursty slice of the trace: submissions outpace the cluster, so
    # the pending queue backs up and scheduling policy matters.
    trace = synthetic_scaled_trace(
        seed=7, n_jobs=150, overallocators=15, window_seconds=300.0
    )
    base = Scenario(
        trace=trace,
        sgx_fraction=1.0,
        seed=1,
        epc_total_bytes=mib(64),
        standard_workers=2,
        sgx_workers=2,
        workload="priority-mix",
        workload_options={
            "high_fraction": 0.2,
            "high_priority": "latency-critical",
        },
    )

    rows = []
    results = {}
    for policy in ("none", "cheapest-victims"):
        result = base.with_(
            name=policy, preemption_policy=policy
        ).run()
        results[policy] = result
        row = result.to_row()
        for tier in ("high", "low"):
            waits = tier_waits(result, tier)
            row[f"{tier}_p50_wait_s"] = round(
                statistics.median(waits), 2
            )
        rows.append(row)

    keep = [
        "scenario", "completed", "high_p50_wait_s", "low_p50_wait_s",
        "preemptions", "evictions", "wait_epc", "makespan_s",
    ]
    print("Two-tier tenant mix, non-preemptive vs cheapest-victims:\n")
    print(rows_to_table([{k: row[k] for k in keep} for row in rows]))

    none, cheap = results["none"], results["cheapest-victims"]
    reduction = statistics.median(
        tier_waits(none, "high")
    ) / max(statistics.median(tier_waits(cheap, "high")), 1e-9)
    print(
        f"\nHigh-tier p50 waiting time drops {reduction:.1f}x; the "
        f"planner executed {cheap.preemption_count} preemptions "
        f"({cheap.eviction_count} evictions), and every evicted batch "
        "pod was resubmitted at its original FCFS position."
    )
    assert cheap.preemption_count > 0
    assert reduction > 1.0


if __name__ == "__main__":
    main()
