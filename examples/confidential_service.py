#!/usr/bin/env python3
"""A confidential service's full life: deploy, attest, seal, restart.

Combines the orchestration and SGX substrates the way the paper's
motivating scenario does: a tenant deploys a secret-holding service to
an untrusted cluster, verifies it by remote attestation, persists its
state with sealed storage, and survives a pod restart *without*
re-attesting — Section II's stated purpose of sealing.

Run:  python examples/confidential_service.py
"""

from repro import (
    BinpackScheduler,
    Orchestrator,
    make_pod_spec,
    paper_cluster,
)
from repro.sgx.sealing import SealingError, SealingService, SealPolicy
from repro.units import mib

SECRET_STATE = b"user-keys: alice=0xA11CE, bob=0xB0B"


def deploy_service(orchestrator, scheduler, name, now):
    """Deploy one instance of the service and return its pod."""
    pod = orchestrator.submit(
        make_pod_spec(
            name, duration_seconds=3600.0, declared_epc_bytes=mib(16)
        ),
        now=now,
    )
    result = orchestrator.scheduling_pass(scheduler, now=now + 1.0)
    assert any(p is pod for p, _ in result.launched)
    orchestrator.start_pod(pod, now=now + 1.5)
    return pod


def enclave_of(orchestrator, pod):
    """The pod's enclave and its node's AESM (via the driver books)."""
    kubelet = orchestrator.kubelets[pod.node_name]
    record = kubelet._records[pod.uid]  # white-box peek for the demo
    return record.enclave, record.psw.aesm


def main() -> None:
    orchestrator = Orchestrator(paper_cluster())
    scheduler = BinpackScheduler()

    # Generation 1 of the service.
    pod_v1 = deploy_service(orchestrator, scheduler, "kv-service-v1", 0.0)
    enclave_v1, aesm_v1 = enclave_of(orchestrator, pod_v1)
    print(f"deployed {pod_v1.name} on {pod_v1.node_name}")

    # The tenant attests it before trusting it with secrets.
    quote = aesm_v1.get_quote(enclave_v1.measurement, report_data="nonce-1")
    print(f"attestation quote: {quote.digest[:24]}... (verified by tenant)")

    # The service seals its state to the node's disk (MRSIGNER policy,
    # so a patched build from the same vendor can still read it).
    sealing = SealingService(platform_id=pod_v1.node_name)
    blob = sealing.seal(enclave_v1, SECRET_STATE, SealPolicy.MRSIGNER)
    print(f"sealed {blob.size_bytes} bytes of state (policy {blob.policy})")

    # The pod is killed (node drain, crash, upgrade...).
    orchestrator.kill_pod(pod_v1, now=100.0, reason="node drain")
    print(f"{pod_v1.name} killed: {pod_v1.failure_reason}")

    # Generation 2 lands on a node; if it is the same platform, the
    # sealed state opens with no new remote attestation round-trip.
    pod_v2 = deploy_service(orchestrator, scheduler, "kv-service-v2", 200.0)
    enclave_v2, _ = enclave_of(orchestrator, pod_v2)
    print(f"redeployed as {pod_v2.name} on {pod_v2.node_name}")

    if pod_v2.node_name == pod_v1.node_name:
        recovered = sealing.unseal(enclave_v2, blob)
        print(
            f"state recovered without re-attestation: "
            f"{recovered.decode()!r}"
        )
    else:
        # Seal keys are platform-bound: another node cannot unseal.
        try:
            SealingService(pod_v2.node_name).unseal(enclave_v2, blob)
        except SealingError as exc:
            print(f"different platform, unseal refused as designed: {exc}")
            print("(a real deployment migrates sealed state by re-sealing "
                  "through an attested channel)")

    # An imposter signed by another vendor can never read the state.
    from repro.sgx.driver import SgxDriver
    from repro.sgx.epc import EnclavePageCache
    from repro.sgx.aesm import AesmService

    evil_driver = SgxDriver(EnclavePageCache())
    evil_driver.register_process(1, "/kubepods/burstable/podevil")
    imposter = evil_driver.create_enclave(
        1, size_bytes=mib(16), signer="eve-corp"
    )
    evil_aesm = AesmService(platform_id=pod_v1.node_name)
    evil_aesm.start()
    evil_driver.initialize_enclave(1, imposter, evil_aesm)
    try:
        sealing.unseal(imposter, blob)
    except SealingError as exc:
        print(f"imposter enclave rejected: {exc}")


if __name__ == "__main__":
    main()
