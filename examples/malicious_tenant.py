#!/usr/bin/env python3
"""Limit enforcement against malicious tenants (Section VI-F, Fig. 11).

Deploys under-declaring containers — 1 EPC page requested, half the
node's EPC actually allocated — next to the honest trace workload, with
and without the paper's driver-level limit enforcement, and shows:

* without enforcement, honest jobs queue behind the squatters;
* with enforcement, the driver denies the malicious enclaves at EINIT
  ("immediately killed after launch") and honest waits recover — even
  beating the squatter-free run, because the trace's own over-allocators
  get killed too.

Run:  python examples/malicious_tenant.py
"""

from repro import (
    MaliciousConfig,
    PodPhase,
    Scenario,
    synthetic_scaled_trace,
)


def honest_mean_wait(result) -> float:
    honest = [
        pod
        for pod in result.metrics.succeeded
        if pod.spec.labels.get("origin") != "malicious"
    ]
    waits = result.metrics.waiting_times(honest)
    return sum(waits) / len(waits)


def main() -> None:
    trace = synthetic_scaled_trace(seed=42)
    scenarios = [
        ("trace only, stock driver", False, None),
        ("malicious @25% EPC, stock driver", False, 0.25),
        ("malicious @50% EPC, stock driver", False, 0.50),
        ("malicious @50% EPC, LIMITS ENFORCED", True, 0.50),
    ]

    print(
        f"{'scenario':38s} {'honest mean wait':>17s} "
        f"{'killed at launch':>17s}"
    )
    for label, enforce, occupancy in scenarios:
        malicious = (
            MaliciousConfig(epc_occupancy=occupancy) if occupancy else None
        )
        result = Scenario(
            name=label,
            scheduler="binpack",
            sgx_fraction=0.5,
            seed=1,
            trace=trace,
            enforce_epc_limits=enforce,
            epc_allow_overcommit=not enforce,
            malicious=malicious,
        ).run()
        killed = result.metrics.pods_in_phase(PodPhase.FAILED)
        print(
            f"{label:38s} {honest_mean_wait(result):15.1f}s "
            f"{len(killed):17d}"
        )
        if enforce:
            malicious_killed = [
                p
                for p in killed
                if p.spec.labels.get("origin") == "malicious"
            ]
            print(
                f"{'':38s} -> enforcement denied "
                f"{len(malicious_killed)} malicious enclave(s) and "
                f"{len(killed) - len(malicious_killed)} over-allocating "
                "trace jobs at EINIT"
            )


if __name__ == "__main__":
    main()
